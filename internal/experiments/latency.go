package experiments

import (
	"vrex/internal/hwsim"
	"vrex/internal/report"
)

var kvSweep = []int{1000, 5000, 10000, 20000, 40000}

// edgeSystems pairs each Fig. 13(a) system with its device.
func edgeSystems() []struct {
	Dev hwsim.DeviceSpec
	Pol hwsim.PolicyModel
} {
	agx := hwsim.AGXOrin()
	return []struct {
		Dev hwsim.DeviceSpec
		Pol hwsim.PolicyModel
	}{
		{agx, hwsim.FlexGenModel()},
		{agx, hwsim.InfiniGenModel()},
		{agx, hwsim.InfiniGenPModel()},
		{agx, hwsim.ReKVModel()},
		{hwsim.VRex8(), hwsim.ReSVModel()},
	}
}

// serverSystems pairs each Fig. 13(b) system with its device.
func serverSystems() []struct {
	Dev hwsim.DeviceSpec
	Pol hwsim.PolicyModel
} {
	a100 := hwsim.A100()
	return []struct {
		Dev hwsim.DeviceSpec
		Pol hwsim.PolicyModel
	}{
		{a100, hwsim.FlexGenModel()},
		{a100, hwsim.InfiniGenModel()},
		{a100, hwsim.InfiniGenPModel()},
		{a100, hwsim.ReKVModel()},
		{hwsim.VRex48(), hwsim.ReSVModel()},
	}
}

// Fig13LatencyEnergy regenerates Fig. 13: per-frame latency, TPOT and
// energy efficiency for all systems, edge (batch 1 and 4) and server (batch
// 1 and 8), sweeping the KV cache from 1K to 40K.
func Fig13LatencyEnergy(Options) []*report.Table {
	llm := hwsim.Llama3_8B()
	var tables []*report.Table
	type tier struct {
		name    string
		systems []struct {
			Dev hwsim.DeviceSpec
			Pol hwsim.PolicyModel
		}
		bigBatch int
	}
	for _, tr := range []tier{
		{"edge", edgeSystems(), 4},
		{"server", serverSystems(), 8},
	} {
		lat := report.NewTable("Fig 13 ("+tr.name+"): per-frame latency (ms), batch 1",
			"system", "kv1K", "kv5K", "kv10K", "kv20K", "kv40K")
		latB := report.NewTable("Fig 13 ("+tr.name+"): per-frame latency (ms), big batch",
			"system", "kv1K", "kv5K", "kv10K", "kv20K", "kv40K")
		tpot := report.NewTable("Fig 13 ("+tr.name+"): TPOT (ms), batch 1",
			"system", "kv1K", "kv5K", "kv10K", "kv20K", "kv40K")
		eff := report.NewTable("Fig 13 ("+tr.name+"): energy efficiency (GOPS/W), frame batch 1",
			"system", "kv1K", "kv5K", "kv10K", "kv20K", "kv40K")
		for _, sys := range tr.systems {
			name := sys.Dev.Name + "+" + sys.Pol.Name
			rowLat := []any{name}
			rowLatB := []any{name}
			rowTpot := []any{name}
			rowEff := []any{name}
			for _, kv := range kvSweep {
				sim := hwsim.NewSim(sys.Dev, llm, sys.Pol)
				f1 := sim.FrameLatency(10, kv, 1)
				fb := sim.FrameLatency(10, kv, tr.bigBatch)
				tp := sim.TPOT(kv, 1)
				rowLat = append(rowLat, f1.Total*1000)
				rowLatB = append(rowLatB, fb.Total*1000)
				rowTpot = append(rowTpot, tp.Total*1000)
				rowEff = append(rowEff, f1.GOPSPerWatt())
			}
			lat.AddRow(rowLat...)
			latB.AddRow(rowLatB...)
			tpot.AddRow(rowTpot...)
			eff.AddRow(rowEff...)
		}
		// Speedup summary row: baseline (FlexGen) over the V-Rex system.
		base := tr.systems[0]
		vrex := tr.systems[len(tr.systems)-1]
		spd := []any{"speedup FlexGen/V-Rex"}
		for _, kv := range kvSweep {
			b := hwsim.NewSim(base.Dev, llm, base.Pol).FrameLatency(10, kv, 1)
			v := hwsim.NewSim(vrex.Dev, llm, vrex.Pol).FrameLatency(10, kv, 1)
			spd = append(spd, b.Total/v.Total)
		}
		lat.AddRow(spd...)
		tables = append(tables, lat, latB, tpot, eff)
	}
	return tables
}

// Fig14E2EBreakdown regenerates Fig. 14: end-to-end latency of the COIN
// average scenario on AGX (FlexGen / InfiniGenP / ReKV) vs V-Rex8,
// normalised to V-Rex8, with the vision/prefill/generation split.
func Fig14E2EBreakdown(Options) []*report.Table {
	llm := hwsim.Llama3_8B()
	sc := defaultScenario()
	t := report.NewTable("Fig 14: E2E latency breakdown (normalized to V-Rex8)",
		"kv_len", "system", "vision_s", "prefill_s", "generation_s", "total_s", "vs_vrex8")
	for _, kv := range kvSweep {
		vsim := hwsim.NewSim(hwsim.VRex8(), llm, hwsim.ReSVModel())
		vv, vp, vg := sc.e2e(vsim, kv, 1)
		vt := vv + vp + vg
		t.AddRow(kv, "V-Rex8+ReSV", vv, vp, vg, vt, 1.0)
		for _, pol := range []hwsim.PolicyModel{hwsim.FlexGenModel(), hwsim.InfiniGenPModel(), hwsim.ReKVModel()} {
			sim := hwsim.NewSim(hwsim.AGXOrin(), llm, pol)
			av, ap, ag := sc.e2e(sim, kv, 1)
			at := av + ap + ag
			t.AddRow(kv, "AGX+"+pol.Name, av, ap, ag, at, at/vt)
		}
	}
	return []*report.Table{t}
}

// Fig15Throughput regenerates Fig. 15: frame throughput at batch 16 for
// AGX Orin (no offload), Oaken (4-bit KV) and V-Rex8, with OOM points.
func Fig15Throughput(Options) []*report.Table {
	llm := hwsim.Llama3_8B()
	t := report.NewTable("Fig 15: throughput (FPS) at batch 16",
		"system", "kv1K", "kv5K", "kv10K", "kv20K", "kv40K")
	type sys struct {
		dev hwsim.DeviceSpec
		pol hwsim.PolicyModel
	}
	for _, s := range []sys{
		{hwsim.AGXOrin(), hwsim.DenseModel()},
		{hwsim.AGXOrin(), hwsim.OakenModel()},
		{hwsim.VRex8(), hwsim.ReSVModel()},
	} {
		row := []any{s.dev.Name + "+" + s.pol.Name}
		for _, kv := range kvSweep {
			b := hwsim.NewSim(s.dev, llm, s.pol).FrameLatency(10, kv, 16)
			if b.OOM {
				row = append(row, "OOM")
			} else {
				row = append(row, 16/b.Total)
			}
		}
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

// Fig16Ablation regenerates Fig. 16: cumulative latency and energy gains of
// V-Rex's optimizations at a 40K cache, batch 1, with the per-component
// latency breakdown.
func Fig16Ablation(Options) []*report.Table {
	llm := hwsim.Llama3_8B()
	const kv = 40000
	type step struct {
		name string
		dev  hwsim.DeviceSpec
		pol  hwsim.PolicyModel
	}
	kvpuOnly := hwsim.ReSVModel()
	kvpuOnly.Name = "ReSV (KVPU only)"
	kvpuOnly.SegmentTokens = 4 // KVMU's cluster-contiguous mapping disabled
	steps := []step{
		{"AGX+FlexGen (baseline)", hwsim.AGXOrin(), hwsim.FlexGenModel()},
		{"AGX+ReSV", hwsim.AGXOrin(), hwsim.ReSVOnGPUModel()},
		{"V-Rex8 KVPU", hwsim.VRex8(), kvpuOnly},
		{"V-Rex8 All", hwsim.VRex8(), hwsim.ReSVModel()},
	}
	t := report.NewTable("Fig 16: ablation at 40K cache, batch 1",
		"config", "latency_ms", "speedup", "energy_J", "energy_gain",
		"retrieval_ms", "llm_ms", "vision_ms", "pred_ms")
	var baseLat, baseEnergy float64
	for i, st := range steps {
		b := hwsim.NewSim(st.dev, llm, st.pol).FrameLatency(10, kv, 1)
		if i == 0 {
			baseLat, baseEnergy = b.Total, b.EnergyJ
		}
		t.AddRow(st.name, b.Total*1000, baseLat/b.Total, b.EnergyJ, baseEnergy/b.EnergyJ,
			b.FetchExposed*1000, b.LLMTime()*1000, b.VisionTime*1000, b.PredExposed*1000)
	}
	return []*report.Table{t}
}
