package experiments

import (
	"fmt"
	"math"

	"vrex/internal/cluster"
	"vrex/internal/hwsim"
	"vrex/internal/report"
	"vrex/internal/serve"
)

// ClusterServing is the geo-distributed study on the cluster plane: fleets
// of V-Rex48 nodes behind a global session router, with live KV migration
// between devices and nodes priced through the kvpool transfer mover and the
// LAN/WAN link models. Three tables:
//
//   - nodes x router sweep under open-loop churn (full mode pushes past 10^4
//     sessions per run): cluster goodput, SLO attainment and rebalancing
//     migration overhead per routing policy;
//   - node drain + recovery with the evacuated KV crossing the LAN vs the
//     WAN: migration volume, time, and the SLO dip around the outage;
//   - autoscaler comparison from a one-warm-node cold start: how much of the
//     statically-provisioned cluster's goodput each scaler recovers, and the
//     migration churn it pays.
func ClusterServing(opts Options) []*report.Table {
	duration := 30.0
	devs := 16 // devices per node
	life := 10.0
	// Per-table arrival rates (sessions/s): the sweep runs hot so routing
	// quality shows, the drain study light enough that the survivor can absorb
	// the evacuees (the dip comes from migration cost, and recovery is
	// visible), the autoscaler study sized to overload its single warm node.
	// Full mode pushes past 10^4 sessions per sweep run.
	sweepRate, drainRate, autoRate := 400.0, 50.0, 120.0
	if opts.Quick {
		duration, devs, life = 8, 2, 4
		sweepRate, drainRate, autoRate = 30, 15, 60
	}

	classes, err := serve.ParseMix("2fps:0.7,4fps:0.3")
	if err != nil {
		panic(fmt.Sprintf("experiments: cluster mix: %v", err))
	}
	for i := range classes {
		classes[i].Priority = i
		// Query-free mid-depth sessions (12K KV, ~40 streams per device): deep
		// enough that placement quality matters and every migration moves real
		// KV, shallow enough that a migrated session's transfer stall is a
		// dip rather than a collapse.
		classes[i].Stream.QueryEvery = 0
		classes[i].Stream.StartKV = 12000
		classes[i].SLO = 0.7
	}
	mkBase := func(rate float64) serve.Config {
		sched, err := serve.ParseScheduler("edf")
		if err != nil {
			panic(fmt.Sprintf("experiments: cluster scheduler: %v", err))
		}
		cs := make([]serve.StreamClass, len(classes))
		copy(cs, classes)
		return serve.Config{
			Pol:     hwsim.ReSVModel(),
			Streams: 4, Duration: duration, Classes: cs,
			Churn:         serve.ChurnConfig{ArrivalRate: rate, MeanLifetime: life},
			DropThreshold: 4, Seed: opts.Seed, Workers: opts.Parallel,
			Scheduler: serve.SchedulerConfig{Policy: sched, BatchMax: 8, SLO: 0.7},
		}
	}
	nodeList := func(n int) []cluster.NodeSpec {
		nodes := make([]cluster.NodeSpec, n)
		for i := range nodes {
			nodes[i] = cluster.NodeSpec{Spec: hwsim.VRex48(), Devices: devs, Region: "us"}
		}
		return nodes
	}
	mustRouter := func(name string) cluster.Router {
		r, err := cluster.ParseRouter(name)
		if err != nil {
			panic(fmt.Sprintf("experiments: cluster router %q: %v", name, err))
		}
		return r
	}

	// Sweep: cluster size x routing policy, rebalancer on so routing quality
	// shows up both in goodput and in how much corrective migration it costs.
	fleets := []int{2, 4, 8}
	if opts.Quick {
		fleets = []int{1, 2, 4}
	}
	sweep := report.NewTable(
		fmt.Sprintf("Cluster: nodes x router, %d-device V-Rex48 nodes, churn %.3g/s, rebalancing on", devs, sweepRate),
		"nodes", "router", "sessions", "served", "goodput_fps", "slo_pct",
		"dropped_pct", "migrations", "mig_ms", "util_pct")
	for _, n := range fleets {
		for _, rname := range cluster.RouterNames() {
			res := cluster.Run(cluster.Config{
				Nodes: nodeList(n), Base: mkBase(sweepRate), Router: mustRouter(rname),
				Rebalance:       cluster.RebalanceConfig{MaxMoves: 4, Slack: 1},
				ControlInterval: 1,
			})
			agg := res.Serve.Aggregate
			mig := res.Serve.Migrations
			sweep.AddRow(n, rname, agg.Sessions, agg.FramesServed, agg.Goodput,
				100*agg.SLOAttained, 100*agg.DropRate, mig.Live+mig.Lossy,
				1000*mig.Time, 100*res.Serve.Utilization)
		}
	}

	// Drain + recovery: node 1 leaves at 40% of the run and returns at 70%;
	// its sessions live-migrate out and the rebalancer refills it afterwards.
	// The same topology runs with both nodes in one region (LAN) and split
	// across regions (WAN) — the only difference is the link the KV crosses.
	faultAt := math.Floor(0.4 * duration)
	recoverAt := math.Floor(0.7 * duration)
	drain := report.NewTable(
		fmt.Sprintf("Cluster: node drain at t=%g, recovery at t=%g — live KV migration over LAN vs WAN", faultAt, recoverAt),
		"net", "live_migrations", "kv_tokens_moved", "migration_ms",
		"pre_slo_pct", "dip_slo_pct", "post_slo_pct")
	for _, net := range []struct{ name, region2 string }{{"lan", "us"}, {"wan", "eu"}} {
		nodes := nodeList(2)
		nodes[1].Region = net.region2
		res := cluster.Run(cluster.Config{
			Nodes: nodes, Base: mkBase(drainRate), Router: mustRouter("least-loaded"),
			Faults: []cluster.Fault{{
				Kind: cluster.FaultDrain, Node: 1, At: faultAt, Recover: recoverAt,
			}},
			Rebalance:       cluster.RebalanceConfig{MaxMoves: 4, Slack: 1},
			ControlInterval: 1,
		})
		mig := res.Serve.Migrations
		pre := res.Windows[int(faultAt)-1].Attained
		dip := 1.0
		for i := int(faultAt); i < len(res.Windows) && i <= int(recoverAt)+1; i++ {
			dip = math.Min(dip, res.Windows[i].Attained)
		}
		post := res.Windows[len(res.Windows)-1].Attained
		drain.AddRow(net.name, mig.Live, mig.Tokens, 1000*mig.Time,
			100*pre, 100*dip, 100*post)
	}

	// Autoscaler: a 4-node cluster starting with one warm node; scalers grow
	// it back under load, and the rebalancer moves sessions onto reactivated
	// nodes. "none" is the statically-provisioned (all-warm) reference.
	autoTab := report.NewTable(
		"Cluster: autoscaler from a 1-warm-node cold start, 4 nodes",
		"autoscaler", "nodes_used", "sessions", "served", "goodput_fps",
		"slo_pct", "migrations")
	for _, spec := range []string{"none", "queue(hi=0.02,lo=0.005)", "slo(target=0.95,lo=0.01)"} {
		scaler, err := cluster.ParseAutoscaler(spec)
		if err != nil {
			panic(fmt.Sprintf("experiments: cluster autoscaler %q: %v", spec, err))
		}
		initial := 0
		if scaler != nil {
			initial = 1
		}
		res := cluster.Run(cluster.Config{
			Nodes: nodeList(4), Base: mkBase(autoRate), Router: mustRouter("least-loaded"),
			Autoscaler: scaler, InitialNodes: initial,
			Rebalance:       cluster.RebalanceConfig{MaxMoves: 8, Slack: 1},
			ControlInterval: 1,
		})
		used := 0
		for _, nm := range res.PerNode {
			if nm.FramesServed > 0 {
				used++
			}
		}
		agg := res.Serve.Aggregate
		mig := res.Serve.Migrations
		autoTab.AddRow(spec, used, agg.Sessions, agg.FramesServed, agg.Goodput,
			100*agg.SLOAttained, mig.Live+mig.Lossy)
	}
	return []*report.Table{sweep, drain, autoTab}
}
