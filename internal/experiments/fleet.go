package experiments

import (
	"fmt"

	"vrex/internal/hwsim"
	"vrex/internal/report"
	"vrex/internal/serve"
)

// FleetServing extends the scale study to the Scenario API: a fleet of
// V-Rex48 devices serves a heterogeneous stream mix under open-loop session
// churn, swept across fleet sizes and balancing policies. It quantifies how
// the paper's single-device serving advantage composes into a multi-device
// deployment — capacity should scale near-linearly with fleet size when the
// balancer keeps per-device load even, and per-class latency shows whether a
// mix component is starved.
func FleetServing(opts Options) []*report.Table {
	duration := 20.0
	perDevLimit := 32
	if opts.Quick {
		duration = 8
		perDevLimit = 12
	}
	mixes := []struct {
		name string
		spec string
	}{
		{"uniform 2fps", "2fps:1"},
		{"2fps:0.7 + 4fps:0.3", "2fps:0.7,4fps:0.3"},
	}
	fleets := []int{1, 2, 4}
	// Pinned to the pre-kvpool balancer set: this sweep's golden output
	// predates the kv-pressure balancer, which the `memory` experiment
	// studies under an actual page budget instead.
	balancers := []string{"kv-affinity", "least-loaded", "round-robin"}

	mk := func(mixSpec string, devices int, bal serve.Balancer) serve.Config {
		classes, err := serve.ParseMix(mixSpec)
		if err != nil {
			panic(fmt.Sprintf("experiments: fleet mix %q: %v", mixSpec, err))
		}
		// Query-free mid-session streams, as in the scale study's capacity
		// measurement, but deeper into the session (40K KV) so per-device
		// capacity is low enough for balancer differences to show.
		for i := range classes {
			classes[i].Stream.QueryEvery = 0
			classes[i].Stream.StartKV = 40000
		}
		return serve.Config{
			Dev: hwsim.VRex48(), Pol: hwsim.ReSVModel(),
			Streams: 1, Duration: duration, Classes: classes,
			Devices: devices, Balancer: bal,
			DropThreshold: 4, Seed: opts.Seed, Workers: opts.Parallel,
		}
	}

	// Capacity sweep: max real-time streams per (mix, balancer, fleet size).
	capTab := report.NewTable("Fleet: max concurrent real-time streams (V-Rex48 + ReSV, 40K KV)",
		"mix", "balancer", "dev1", "dev2", "dev4")
	for _, mix := range mixes {
		for _, balName := range balancers {
			row := []any{mix.name, balName}
			for _, n := range fleets {
				bal, err := serve.NewBalancer(balName)
				if err != nil {
					panic(err)
				}
				row = append(row, serve.MaxRealTimeStreams(mk(mix.spec, n, bal), n*perDevLimit))
			}
			capTab.AddRow(row...)
		}
	}

	// Operating-point detail: per-class and aggregate quality on a 4-device
	// fleet under session churn, per balancer.
	streams := 12
	churn := serve.ChurnConfig{ArrivalRate: 0.4, MeanLifetime: duration / 2}
	if opts.Quick {
		streams = 6
	}
	qual := report.NewTable(
		fmt.Sprintf("Fleet: per-class quality, 4 devices, %d initial streams + churn", streams),
		"balancer", "class", "sessions", "fps_per_stream", "p50_ms", "p99_ms", "dropped_pct", "realtime_sessions")
	for _, balName := range balancers {
		bal, err := serve.NewBalancer(balName)
		if err != nil {
			panic(err)
		}
		cfg := mk(mixes[1].spec, 4, bal)
		cfg.Streams = streams
		cfg.Churn = churn
		res := serve.Run(cfg)
		for _, cm := range append(res.PerClass, res.Aggregate) {
			qual.AddRow(balName, cm.Class, cm.Sessions, cm.MeanFPS,
				1000*cm.P50, 1000*cm.P99, 100*cm.DropRate, cm.RealTimeSessions)
		}
	}
	return []*report.Table{capTab, qual}
}
