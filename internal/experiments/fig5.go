package experiments

import (
	"fmt"

	"vrex/internal/hwsim"
	"vrex/internal/report"
)

// Fig5Pipeline regenerates Fig. 5's co-design illustration as measured
// schedules from the event-driven pipeline simulator: (i) vanilla KV cache
// on storage (serial load), (ii) + software optimisation (ReSV on GPU with
// prefetch overlap), (iii) + hardware optimisation (V-Rex: DRE prediction,
// KVMU fetches). One table per stage shows the first two layers' schedules;
// a summary compares per-layer latency.
func Fig5Pipeline(Options) []*report.Table {
	llm := hwsim.Llama3_8B()
	const kv, batch = 40000, 1
	stages := []struct {
		name string
		dev  hwsim.DeviceSpec
		pol  hwsim.PolicyModel
	}{
		{"i. vanilla KV$ on storage", hwsim.AGXOrin(), hwsim.FlexGenModel()},
		{"ii. + SW optimization", hwsim.AGXOrin(), hwsim.ReSVOnGPUModel()},
		{"iii. + HW optimization", hwsim.VRex8(), hwsim.ReSVModel()},
	}
	var tables []*report.Table
	summary := report.NewTable("Fig 5: per-layer latency by optimisation stage",
		"stage", "layer_latency_us", "vs_vanilla")
	var vanilla float64
	for i, st := range stages {
		sim := hwsim.NewSim(st.dev, llm, st.pol)
		res := sim.SimulatePipeline(10, kv, batch)
		perLayer := res.Total / float64(llm.Layers)
		if i == 0 {
			vanilla = perLayer
		}
		summary.AddRow(st.name, perLayer*1e6, vanilla/perLayer)

		t := report.NewTable(fmt.Sprintf("Fig 5 (%s): schedule of first two layers", st.name),
			"layer", "task", "engine", "start_us", "end_us")
		for _, e := range res.Events {
			if e.Layer > 1 {
				continue
			}
			t.AddRow(e.Layer, e.Kind, e.Res.String(), e.Start*1e6, e.End*1e6)
		}
		tables = append(tables, t)
	}
	return append(tables, summary)
}
