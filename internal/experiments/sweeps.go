package experiments

import (
	"vrex/internal/accuracy"
	"vrex/internal/core"
	"vrex/internal/model"
	"vrex/internal/report"
	"vrex/internal/workload"
)

// sweepEval measures mean accuracy and frame/text ratios for one ReSV
// configuration over a reduced task set (Step + Task keep the sweep fast
// while spanning easy/hard queries). The evaluator is shared across sweep
// values so its session cache is generated once per sweep.
func sweepEval(ev *accuracy.Evaluator, mcfg model.Config, cfg core.Config) (acc, frame, text float64) {
	tasks := []workload.Task{workload.TaskStep, workload.TaskTask}
	var n float64
	for _, task := range tasks {
		r := ev.EvaluateTask(task, func() model.Retriever { return core.New(mcfg, cfg) })
		acc += r.Accuracy
		frame += r.FrameRatio
		text += r.TextRatio
		n++
	}
	return acc / n, frame / n, text / n
}

// SweepThWics is the ablation bench for the WiCSum threshold Th_r-wics: the
// knob trading retrieval ratio against accuracy (the paper tunes it to 0.3
// empirically; this sweep regenerates that trade-off curve).
func SweepThWics(opts Options) []*report.Table {
	t := report.NewTable("Sweep: WiCSum threshold Th_r-wics",
		"th_wics", "accuracy_pct", "frame_ratio_pct", "text_ratio_pct")
	values := []float64{0.1, 0.3, 0.5, 0.8}
	if opts.Quick {
		values = []float64{0.3, 0.8}
	}
	mcfg := functionalModelConfig(opts.Seed)
	ev := opts.evaluator(mcfg, workload.DefaultConfig())
	for _, th := range values {
		cfg := opts.resvConfig()
		cfg.ThWics = th
		acc, fr, tx := sweepEval(ev, mcfg, cfg)
		t.AddRow(th, 100*acc, 100*fr, 100*tx)
	}
	return []*report.Table{t}
}

// SweepThHD is the ablation bench for the Hamming clustering threshold
// Th_hd: lower thresholds produce more, purer clusters (finer selection,
// more prediction work); higher thresholds compress harder.
func SweepThHD(opts Options) []*report.Table {
	t := report.NewTable("Sweep: Hamming threshold Th_hd",
		"th_hd", "accuracy_pct", "frame_ratio_pct", "tokens_per_cluster")
	values := []int{3, 7, 11, 15}
	if opts.Quick {
		values = []int{7, 15}
	}
	mcfg := functionalModelConfig(opts.Seed)
	wcfg := workload.DefaultConfig()
	gen := workload.NewGenerator(wcfg, mcfg.Dim)
	ev := opts.evaluator(mcfg, wcfg)
	for _, th := range values {
		cfg := opts.resvConfig()
		cfg.ThHD = th
		acc, fr, _ := sweepEval(ev, mcfg, cfg)
		// Cluster occupancy on a reference session.
		m := model.New(mcfg)
		r := core.New(mcfg, cfg)
		sess := gen.Session(workload.TaskStep, 0)
		for _, fe := range sess.FrameEmbeds {
			m.Forward(fe, r, model.StageFrame, false)
		}
		t.AddRow(th, 100*acc, 100*fr, r.HCTable(0).AvgTokensPerCluster())
	}
	return []*report.Table{t}
}

// SweepNHp is the ablation bench for the hyperplane count N_hp (signature
// bits): fewer bits make clustering cheaper but noisier (the paper uses 32,
// <= 0.5% of the key dimension).
func SweepNHp(opts Options) []*report.Table {
	t := report.NewTable("Sweep: hyperplane count N_hp",
		"n_hp", "accuracy_pct", "frame_ratio_pct", "tokens_per_cluster")
	values := []int{8, 16, 32, 64}
	if opts.Quick {
		values = []int{16, 32}
	}
	mcfg := functionalModelConfig(opts.Seed)
	wcfg := workload.DefaultConfig()
	gen := workload.NewGenerator(wcfg, mcfg.Dim)
	ev := opts.evaluator(mcfg, wcfg)
	for _, nhp := range values {
		cfg := opts.resvConfig()
		cfg.NHp = nhp
		// Th_hd scales with signature length to keep the same angular
		// acceptance (7/32 of the bits).
		cfg.ThHD = nhp * 7 / 32
		if cfg.ThHD < 1 {
			cfg.ThHD = 1
		}
		acc, fr, _ := sweepEval(ev, mcfg, cfg)
		m := model.New(mcfg)
		r := core.New(mcfg, cfg)
		sess := gen.Session(workload.TaskStep, 0)
		for _, fe := range sess.FrameEmbeds {
			m.Forward(fe, r, model.StageFrame, false)
		}
		t.AddRow(nhp, 100*acc, 100*fr, r.HCTable(0).AvgTokensPerCluster())
	}
	return []*report.Table{t}
}
