package experiments

import (
	"vrex/internal/hwsim"
	"vrex/internal/report"
)

// Fig17Bandwidth regenerates Fig. 17: DRAM bandwidth usage of V-Rex48 over
// two decoder layers of frame processing, showing KV prediction overlapping
// attention and retrieval trickling at ~1% of DRAM bandwidth.
func Fig17Bandwidth(Options) []*report.Table {
	trace := hwsim.BandwidthTrace(hwsim.VRex48(), hwsim.Llama3_8B(), hwsim.ReSVModel(),
		10, 40000, 1, 2, 6)
	t := report.NewTable("Fig 17: V-Rex48 memory bandwidth usage over two layers",
		"time_us", "phase", "llm_GBps", "pred_GBps", "retrieval_GBps")
	for _, p := range trace {
		t.AddRow(p.TimeUS, p.Phase, p.LLMBW/1e9, p.PredBW/1e9, p.RetrievalBW/1e9)
	}
	return []*report.Table{t}
}

// Fig18Roofline regenerates Fig. 18: the roofline positions of AGX+FlexGen,
// AGX+ReKV and V-Rex8 at a 40K cache, batch 4.
func Fig18Roofline(Options) []*report.Table {
	llm := hwsim.Llama3_8B()
	t := report.NewTable("Fig 18: roofline analysis (40K cache, batch 4)",
		"system", "op_intensity", "achieved_TFLOPS", "ceiling_TFLOPS", "pct_of_peak")
	for _, p := range []hwsim.RooflinePoint{
		hwsim.Roofline(hwsim.AGXOrin(), llm, hwsim.FlexGenModel(), 10, 40000, 4),
		hwsim.Roofline(hwsim.AGXOrin(), llm, hwsim.ReKVModel(), 10, 40000, 4),
		hwsim.Roofline(hwsim.VRex8(), llm, hwsim.ReSVModel(), 10, 40000, 4),
	} {
		t.AddRow(p.System, p.OpIntensity, p.AchievedFLOPS/1e12, p.CeilingFLOPS/1e12, 100*p.PeakFraction)
	}
	return []*report.Table{t}
}

// Table1Hardware regenerates Table I: the hardware specifications of the
// compared systems.
func Table1Hardware(Options) []*report.Table {
	t := report.NewTable("Table I: hardware specifications",
		"system", "peak_TFLOPS", "mem", "mem_BW_GBps", "capacity_GB", "pcie_GBps", "power_W", "cores")
	for _, d := range []hwsim.DeviceSpec{hwsim.AGXOrin(), hwsim.VRex8(), hwsim.A100(), hwsim.VRex48()} {
		t.AddRow(d.Name, d.PeakFLOPS/1e12, d.Mem.Name, d.Mem.Bandwidth/1e9,
			d.MemCapacity/1e9, d.Link.Bandwidth/1e9, d.Power, d.Cores)
	}
	return []*report.Table{t}
}

// Table3AreaPower regenerates Table III: the area and power breakdown of a
// single V-Rex core and the DRE's share.
func Table3AreaPower(Options) []*report.Table {
	t := report.NewTable("Table III: area and power breakdown (single core)",
		"engine", "unit", "area_mm2", "power_mW", "area_pct", "power_pct")
	areaTot, powTot := hwsim.CoreTotals()
	for _, u := range hwsim.CoreBudget() {
		t.AddRow(u.Engine, u.Unit, u.AreaMM2, u.PowerMW,
			100*u.AreaMM2/areaTot, 100*u.PowerMW/powTot)
	}
	t.AddRow("Total", "", areaTot, powTot, 100.0, 100.0)

	s := report.NewTable("Table III (derived): chip-level summary",
		"metric", "value")
	af, pf := hwsim.DREShare()
	s.AddRow("DRE area share (%)", 100*af)
	s.AddRow("DRE power share (%)", 100*pf)
	s.AddRow("V-Rex8 area (mm2)", hwsim.ChipArea(8))
	s.AddRow("V-Rex48 area (mm2)", hwsim.ChipArea(48))
	lxe, dre := hwsim.OnChipMemoryBytes()
	s.AddRow("LXE SRAM (KB)", float64(lxe)/1024)
	s.AddRow("DRE SRAM (KB)", float64(dre)/1024)
	return []*report.Table{t, s}
}
