package experiments

import (
	"fmt"

	"vrex/internal/cluster"
	"vrex/internal/report"
	"vrex/internal/scenario"
	"vrex/internal/serve"
	"vrex/scenarios"
)

// ScenarioSuite runs the committed .vrex workload suite (scenarios/) as one
// table — every adversarial load shape the scenario layer supports, each
// compiled through scenario.Config into the serving planes it exercises —
// then lets the seeded adversary loose: a hill-climb over load-shape
// parameters maximizing deadline damage against the fifo scheduler, with the
// winning hostile scenario replayed under every scheduler to show how much
// of the damage deadline-aware ordering buys back. Quick caps each
// scenario's duration (truncating the replay trace consistently — arrival
// ordinals keep their derived seeds) and shrinks the search.
func ScenarioSuite(opts Options) []*report.Table {
	capDur := 0.0
	if opts.Quick {
		capDur = 8
	}
	load := func(s *scenario.Scenario) serve.Result {
		if capDur > 0 && s.Duration > capDur {
			s.Duration = capDur
		}
		if s.IsCluster() {
			cfg, err := s.ClusterConfig()
			if err != nil {
				panic(fmt.Sprintf("experiments: scenario %s: %v", s.Name, err))
			}
			cfg.Base.Workers = opts.Parallel
			return cluster.Run(cfg).Serve
		}
		cfg, err := s.Config()
		if err != nil {
			panic(fmt.Sprintf("experiments: scenario %s: %v", s.Name, err))
		}
		cfg.Workers = opts.Parallel
		return serve.Run(cfg)
	}

	suite := report.NewTable(
		"Scenario suite: committed .vrex workloads through the serving planes",
		"scenario", "arrivals", "lifetime", "scheduler", "sessions", "served",
		"dropped_pct", "slo_pct", "goodput_fps", "p99_ms", "util_pct")
	for _, name := range scenarios.Names() {
		src, err := scenarios.Source(name)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		s, err := scenario.Parse(name, src)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		res := load(s)
		agg := res.Aggregate
		suite.AddRow(s.Name, s.Arrival.Kind, s.Lifetime.Kind, s.Scheduler,
			agg.Sessions, agg.FramesServed, 100*agg.DropRate, 100*agg.SLOAttained,
			agg.Goodput, 1000*agg.P99, 100*res.Utilization)
	}

	// Adversarial search: start from a benign poisson load under fifo with a
	// tight frame deadline, let the hill-climb shape the worst load it can,
	// then replay that load under each scheduler.
	base := scenario.Default()
	base.Name = "adv"
	base.Duration = 16
	base.Seed = opts.Seed
	base.Streams = 4
	base.Scheduler = "fifo"
	base.BatchMax = serve.DefaultBatchMax
	base.Arrival = scenario.ArrivalSpec{Kind: "poisson", Rate: 1}
	base.Lifetime = scenario.LifetimeSpec{Kind: "exp", Mean: 20}
	base.Classes = []scenario.ClassSpec{
		{Name: "2fps", Weight: 0.5, SLOms: 400, Priority: -1},
		{Name: "4fps", Weight: 0.5, SLOms: 700, Priority: -1},
	}
	if capDur > 0 {
		base.Duration = capDur
	}
	rounds := 16
	if opts.Quick {
		rounds = 4
	}
	found, err := scenario.Search(base, scenario.SearchOptions{
		Rounds: rounds, Seed: opts.Seed, Workers: opts.Parallel,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: adversary: %v", err))
	}
	adv := report.NewTable(
		fmt.Sprintf("Scenario adversary: %d-round seeded search vs fifo (damage = misses + drops + SLO shortfall)", rounds),
		"load", "scheduler", "arrivals", "damage", "misses", "dropped", "slo_pct", "p99_ms")
	row := func(label string, s *scenario.Scenario) {
		res := load(s.Clone())
		agg := res.Aggregate
		adv.AddRow(label, s.Scheduler, s.Arrival.Spec(), scenario.Score(res),
			agg.DeadlineMisses, agg.FramesDropped+agg.QueriesDropped,
			100*agg.SLOAttained, 1000*agg.P99)
	}
	row("base", base)
	for _, sched := range []string{"fifo", "edf", "priority"} {
		s := found.Scenario.Clone()
		s.Scheduler = sched
		row("adversarial", s)
	}
	return []*report.Table{suite, adv}
}
