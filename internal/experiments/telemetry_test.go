package experiments

import (
	"bytes"
	"runtime"
	"testing"

	"vrex/internal/report"
)

// TestTelemetryWorkerInvariance requires the rendered telemetry experiment —
// attribution, stalls, spans and exporter footprints — to be byte-identical
// at Workers 1, 4 and GOMAXPROCS: the observability plane consumes the
// single-threaded device loop's deterministic streams, so parallelism in
// schedule construction must never reach the exporters.
func TestTelemetryWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the cluster scenario three times; skipped in -short")
	}
	render := func(workers int) []byte {
		opts := goldenOptions(true)
		opts.Parallel = workers
		var buf bytes.Buffer
		if err := RunMany([]string{"telemetry"}, opts, &buf, report.FormatText); err != nil {
			t.Fatalf("run at %d workers: %v", workers, err)
		}
		return buf.Bytes()
	}
	ref := render(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := render(workers); !bytes.Equal(got, ref) {
			t.Fatalf("telemetry output at %d workers diverged from workers=1\n--- got ---\n%s\n--- want ---\n%s",
				workers, got, ref)
		}
	}
}
