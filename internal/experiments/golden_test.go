package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"vrex/internal/report"
)

// The golden files under testdata/golden pin every experiment's rendered
// output to the bytes produced before the Scenario API redesign: refactors of
// the serving/policy layers must keep pre-existing experiment output
// byte-identical. Regenerate (only when an output change is intentional)
// with:
//
//	go run ./cmd/vrex-bench -exp <id> -quick -parallel 1 \
//	    > internal/experiments/testdata/golden/quick/<id>.txt
//	go run ./cmd/vrex-bench -exp scale -parallel 1 \
//	    > internal/experiments/testdata/golden/full/scale.txt

// goldenHeavy marks experiments that take seconds even in Quick mode; their
// golden comparison is skipped under -short (the CI bench smoke), matching
// bench_test.go.
var goldenHeavy = map[string]bool{
	"fig19":        true,
	"multiturn":    true,
	"sweep-nhp":    true,
	"sweep-thhd":   true,
	"sweep-thwics": true,
	"tab2":         true,
}

// goldenOptions mirrors the vrex-bench defaults the files were captured with
// (-quick -parallel 1, sessions 10, seed 7).
func goldenOptions(quick bool) Options {
	return Options{Sessions: 10, Seed: 7, Quick: quick, Parallel: 1}
}

func checkGolden(t *testing.T, id, path string, opts Options) {
	t.Helper()
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var buf bytes.Buffer
	if err := RunMany([]string{id}, opts, &buf, report.FormatText); err != nil {
		t.Fatalf("run %s: %v", id, err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("%s output diverged from golden %s\n--- got ---\n%s\n--- want ---\n%s",
			id, path, buf.String(), want)
	}
}

// TestGoldenQuickOutputs runs every experiment registered before the redesign
// in Quick mode and requires byte-identical output to the pinned goldens.
func TestGoldenQuickOutputs(t *testing.T) {
	dir := filepath.Join("testdata", "golden", "quick")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read golden dir: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("no golden files")
	}
	for _, e := range entries {
		id := e.Name()[:len(e.Name())-len(".txt")]
		t.Run(id, func(t *testing.T) {
			if testing.Short() && goldenHeavy[id] {
				t.Skipf("%s is heavy even in Quick mode; skipped under -short", id)
			}
			checkGolden(t, id, filepath.Join(dir, e.Name()), goldenOptions(true))
		})
	}
}

// TestGoldenFullScale pins the full-fidelity scale study (the experiment most
// exposed to the serve redesign) at its non-Quick operating point.
func TestGoldenFullScale(t *testing.T) {
	checkGolden(t, "scale", filepath.Join("testdata", "golden", "full", "scale.txt"), goldenOptions(false))
}
