package experiments

import (
	"vrex/internal/core"
	"vrex/internal/model"
	"vrex/internal/report"
	"vrex/internal/retrieval"
	"vrex/internal/workload"
)

// MultiTurnCoherence reproduces the paper's central motivation argument
// (Sec. II-B): destructive cache management (pruning/eviction) answers the
// *current* query fine but breaks *future* queries whose evidence it
// discarded, while retrieval preserves the full context. Each session asks
// two questions: turn 1 targets the most recent scene (pruning keeps that
// evidence hot), turn 2 targets an early scene (whose tokens pruning has
// long evicted). ReSV's accuracy holds across turns; pruning collapses on
// turn 2.
func MultiTurnCoherence(opts Options) []*report.Table {
	mcfg := functionalModelConfig(opts.Seed)
	wcfg := workload.DefaultConfig()
	sessions := opts.sessions() * 3 // cheap sessions; more for stability

	type policyCase struct {
		name    string
		factory func() model.Retriever
	}
	cases := []policyCase{
		{"VideoLLM-Online (dense)", func() model.Retriever { return retrieval.NewDense() }},
		{"Pruning (H2O-style, 30%)", func() model.Retriever { return retrieval.NewPruning(mcfg, 0.3) }},
		{"ReSV (retrieval)", func() model.Retriever { return core.New(mcfg, opts.resvConfig()) }},
	}

	gen := workload.NewGenerator(wcfg, mcfg.Dim)
	t := report.NewTable("Multi-turn coherence: accuracy per turn (pruning vs retrieval)",
		"policy", "turn1_recent_pct", "turn2_early_pct", "turn2_drop_pts")
	for _, pc := range cases {
		var t1Correct, t2Correct, n int
		for si := 0; si < sessions; si++ {
			// Build a session with one Next-style (recent) and one
			// Proc+-style (early) query over the same video.
			recent := gen.Session(workload.TaskNext, si)
			early := gen.Session(workload.TaskProcPlus, si)

			m := model.New(mcfg)
			pol := pc.factory()
			for _, fe := range recent.FrameEmbeds {
				m.Forward(fe, pol, model.StageFrame, false)
			}
			frameTokens := m.Pos()

			q1 := recent.Queries[0]
			out1 := m.Forward(q1.Embeddings, pol, model.StageText, true)
			if sceneArgmax(out1.AttnMass, recent, frameTokens) == q1.TargetScene {
				t1Correct++
			}
			q2 := early.Queries[0]
			out2 := m.Forward(q2.Embeddings, pol, model.StageText, true)
			if sceneArgmax(out2.AttnMass, early, frameTokens) == q2.TargetScene {
				t2Correct++
			}
			n++
		}
		t1 := 100 * float64(t1Correct) / float64(n)
		t2 := 100 * float64(t2Correct) / float64(n)
		t.AddRow(pc.name, t1, t2, t1-t2)
	}
	return []*report.Table{t}
}

// sceneArgmax mirrors the accuracy package's answer readout (duplicated here
// to keep the experiment self-contained over two query sets sharing frames).
func sceneArgmax(mass []float64, sess *workload.Session, frameTokens int) int {
	nScenes := sess.SceneOf[len(sess.SceneOf)-1] + 1
	perScene := make([]float64, nScenes)
	counts := make([]float64, nScenes)
	limit := len(mass)
	if frameTokens < limit {
		limit = frameTokens
	}
	for tok := 0; tok < limit; tok++ {
		perScene[sess.SceneOf[sess.FrameOfToken(tok)]] += mass[tok]
	}
	for _, sc := range sess.SceneOf {
		counts[sc]++
	}
	best, bestV := 0, -1.0
	for sc := range perScene {
		if v := perScene[sc] / counts[sc]; v > bestV {
			best, bestV = sc, v
		}
	}
	return best
}
