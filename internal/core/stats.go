package core

import "vrex/internal/model"

// Ratio accumulates a selected/candidate token pair; the retrieval ratio is
// Selected/Candidate.
type Ratio struct {
	Selected  int64
	Candidate int64
}

// Value returns the ratio in [0, 1] (1 when no candidates were seen).
func (r Ratio) Value() float64 {
	if r.Candidate == 0 {
		return 1
	}
	return float64(r.Selected) / float64(r.Candidate)
}

// StageStats aggregates selection behaviour within one inference stage.
type StageStats struct {
	SelectedTokens  int64
	CandidateTokens int64
	// Rows counts thresholded score rows (query x head pairs).
	Rows int64
	// ExaminedFraction sums per-call mean examined fractions; divide by the
	// number of SelectTokens calls for the average (see Stats.Calls).
	ExaminedFraction float64
	// Calls counts SelectTokens invocations in this stage.
	Calls int64
}

// RetrievalRatio returns selected/candidate tokens for the stage.
func (s *StageStats) RetrievalRatio() float64 {
	if s.CandidateTokens == 0 {
		return 1
	}
	return float64(s.SelectedTokens) / float64(s.CandidateTokens)
}

// AvgExaminedFraction returns the mean examined fraction per call (the
// WTU early-exit metric; the paper reports ~16%).
func (s *StageStats) AvgExaminedFraction() float64 {
	if s.Calls == 0 {
		return 0
	}
	return s.ExaminedFraction / float64(s.Calls)
}

// Stats aggregates ReSV's selection behaviour across a session: per stage
// (frame processing vs text generation, Table II), per layer and per head
// (Fig. 20).
type Stats struct {
	Frame    StageStats
	Text     StageStats
	PerLayer []Ratio
	PerHead  []Ratio
}

// NewStats allocates statistics for a model shape.
func NewStats(layers, heads int) Stats {
	return Stats{
		PerLayer: make([]Ratio, layers),
		PerHead:  make([]Ratio, heads),
	}
}

func (s *Stats) stage(st model.Stage) *StageStats {
	if st == model.StageFrame {
		return &s.Frame
	}
	return &s.Text
}
