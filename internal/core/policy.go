package core

// Name identifies the policy ("ReSV"); together with FrameRatio/TextRatio it
// lets ReSV satisfy the retrieval.Policy interface used by the experiment
// harness.
func (r *ReSV) Name() string {
	if r.cfg.DisableClustering {
		return "ReSV w/o Clustering"
	}
	return "ReSV"
}

// FrameRatio returns the observed frame-processing-stage retrieval ratio.
func (r *ReSV) FrameRatio() float64 { return r.stats.Frame.RetrievalRatio() }

// TextRatio returns the observed text-generation-stage retrieval ratio.
func (r *ReSV) TextRatio() float64 { return r.stats.Text.RetrievalRatio() }
