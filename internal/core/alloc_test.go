package core

import (
	"testing"

	"vrex/internal/mathx"
	"vrex/internal/model"
	"vrex/internal/tensor"
)

// TestSelectTokensSteadyStateAllocFree pins the tentpole guarantee: once a
// session's scratch arenas are warm, the sequential SelectTokens hot path
// performs zero heap allocations per call. Any future change that
// reintroduces per-frame allocation (score rows, token sets, sort closures,
// layout rebuilds) fails this test.
func TestSelectTokensSteadyStateAllocFree(t *testing.T) {
	tensor.SetWorkers(1)
	t.Cleanup(func() { tensor.SetWorkers(0) })

	mcfg := model.DefaultConfig()
	cfg := DefaultConfig()
	cfg.Workers = 1
	m := model.New(mcfg)
	r := New(mcfg, cfg)
	rng := mathx.NewRNG(21)
	for _, f := range driftFrames(6, 6, mcfg.Dim, 0.97, rng) {
		m.Forward(f, r, model.StageFrame, false)
	}
	base := m.Pos()
	q := frameInput(3, mcfg.Dim, rng)
	// Warm the arenas (first call at this base may still grow buffers).
	for i := 0; i < 3; i++ {
		r.SelectTokens(0, m.Cache(0), q, base, model.StageFrame)
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.SelectTokens(0, m.Cache(0), q, base, model.StageFrame)
	})
	if allocs != 0 {
		t.Fatalf("steady-state SelectTokens allocates %v times per call, want 0", allocs)
	}
}

// TestSelectTokensAllocFreeEarlyExitAndExact covers both WiCSum sorter
// variants, since they use different scratch buffers.
func TestSelectTokensAllocFreeEarlyExitAndExact(t *testing.T) {
	tensor.SetWorkers(1)
	t.Cleanup(func() { tensor.SetWorkers(0) })

	for _, buckets := range []int{0, 20} {
		mcfg := model.DefaultConfig()
		cfg := DefaultConfig()
		cfg.Workers = 1
		cfg.Buckets = buckets
		cfg.RecentWindow = 4
		m := model.New(mcfg)
		r := New(mcfg, cfg)
		rng := mathx.NewRNG(22)
		for _, f := range driftFrames(5, 6, mcfg.Dim, 0.97, rng) {
			m.Forward(f, r, model.StageFrame, false)
		}
		base := m.Pos()
		q := frameInput(2, mcfg.Dim, rng)
		for i := 0; i < 3; i++ {
			r.SelectTokens(1, m.Cache(1), q, base, model.StageText)
		}
		allocs := testing.AllocsPerRun(100, func() {
			r.SelectTokens(1, m.Cache(1), q, base, model.StageText)
		})
		if allocs != 0 {
			t.Fatalf("buckets=%d: steady-state SelectTokens allocates %v times per call, want 0", buckets, allocs)
		}
	}
}

// TestSortIntsMatchesSorted exercises both the insertion-sort and the
// slices.Sort fallback branch.
func TestSortIntsMatchesSorted(t *testing.T) {
	rng := mathx.NewRNG(23)
	for _, n := range []int{0, 1, 2, sortIntsCutoff, sortIntsCutoff + 1, 500} {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(1000)
		}
		sorted := append([]int(nil), xs...)
		sortInts(xs)
		// Reference: simple selection of ascending order.
		for i := 1; i < len(xs); i++ {
			if xs[i] < xs[i-1] {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
		}
		if len(xs) != len(sorted) {
			t.Fatalf("n=%d: length changed", n)
		}
	}
}
