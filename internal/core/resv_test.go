package core

import (
	"math"
	"testing"

	"vrex/internal/kvcache"
	"vrex/internal/mathx"
	"vrex/internal/model"
	"vrex/internal/tensor"
)

func frameInput(rows, dim int, rng *mathx.RNG) *tensor.Matrix {
	m := tensor.NewMatrix(rows, dim)
	m.Randomize(rng, 1)
	return m
}

// driftFrames returns nFrames correlated frames (AR rho) of tokensPerFrame
// embeddings, mimicking the vision stream's temporal similarity.
func driftFrames(nFrames, tokensPerFrame, dim int, rho float32, rng *mathx.RNG) []*tensor.Matrix {
	base := frameInput(tokensPerFrame, dim, rng)
	frames := []*tensor.Matrix{base.Clone()}
	nscale := float32(math.Sqrt(float64(1 - rho*rho)))
	for f := 1; f < nFrames; f++ {
		next := frames[f-1].Clone()
		for i := range next.Data {
			next.Data[i] = rho*next.Data[i] + nscale*rng.Norm32()
		}
		frames = append(frames, next)
	}
	return frames
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{NHp: 0, ThWics: 0.3},
		{NHp: 32, ThHD: -1, ThWics: 0.3},
		{NHp: 32, ThWics: 0},
		{NHp: 32, ThWics: 1.5},
		{NHp: 32, ThWics: 0.3, Buckets: -1},
		{NHp: 32, ThWics: 0.3, RecentWindow: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestReSVImplementsRetrieverEndToEnd(t *testing.T) {
	mcfg := model.DefaultConfig()
	m := model.New(mcfg)
	r := New(mcfg, DefaultConfig())
	rng := mathx.NewRNG(2)
	for _, f := range driftFrames(5, 6, mcfg.Dim, 0.97, rng) {
		m.Forward(f, r, model.StageFrame, false)
	}
	if m.Pos() != 30 {
		t.Fatal("frames not processed")
	}
	st := r.Stats()
	if st.Frame.CandidateTokens == 0 {
		t.Fatal("no candidates recorded")
	}
	ratio := st.Frame.RetrievalRatio()
	if ratio <= 0 || ratio > 1 {
		t.Fatalf("frame retrieval ratio %v out of (0,1]", ratio)
	}
}

func TestReSVSelectionSubsetOfPast(t *testing.T) {
	mcfg := model.DefaultConfig()
	m := model.New(mcfg)
	r := New(mcfg, DefaultConfig())
	rng := mathx.NewRNG(3)
	frames := driftFrames(4, 5, mcfg.Dim, 0.97, rng)
	for _, f := range frames[:3] {
		m.Forward(f, r, model.StageFrame, false)
	}
	// Directly exercise SelectTokens at layer 0.
	base := m.Pos()
	q := frameInput(5, mcfg.Dim, rng)
	sel := r.SelectTokens(0, m.Cache(0), q, base, model.StageFrame)
	seen := map[int]bool{}
	for _, tok := range sel {
		if tok < 0 || tok >= base {
			t.Fatalf("selected token %d outside past range [0,%d)", tok, base)
		}
		if seen[tok] {
			t.Fatalf("duplicate token %d in selection", tok)
		}
		seen[tok] = true
	}
	// Sorted ascending.
	for i := 1; i < len(sel); i++ {
		if sel[i] < sel[i-1] {
			t.Fatal("selection not sorted")
		}
	}
}

func TestReSVEmptyHistory(t *testing.T) {
	mcfg := model.DefaultConfig()
	r := New(mcfg, DefaultConfig())
	if sel := r.SelectTokens(0, kvcache.NewLayerCache(mcfg.KVDim()), nil, 0, model.StageFrame); sel != nil {
		t.Fatal("no history should select nothing")
	}
}

func TestReSVClusteringCompressesSimilarFrames(t *testing.T) {
	mcfg := model.DefaultConfig()
	m := model.New(mcfg)
	r := New(mcfg, DefaultConfig())
	rng := mathx.NewRNG(4)
	for _, f := range driftFrames(8, 8, mcfg.Dim, 0.99, rng) {
		m.Forward(f, r, model.StageFrame, false)
	}
	// With near-identical frames, clusters should hold well over 1 token on
	// average at layer 0.
	avg := r.HCTable(0).AvgTokensPerCluster()
	if avg < 1.5 {
		t.Fatalf("avg tokens/cluster = %v, want > 1.5 for highly similar frames", avg)
	}
}

func TestReSVDisableClusteringSingletons(t *testing.T) {
	mcfg := model.DefaultConfig()
	m := model.New(mcfg)
	cfg := DefaultConfig()
	cfg.DisableClustering = true
	r := New(mcfg, cfg)
	rng := mathx.NewRNG(5)
	for _, f := range driftFrames(4, 6, mcfg.Dim, 0.99, rng) {
		m.Forward(f, r, model.StageFrame, false)
	}
	tab := r.HCTable(0)
	if tab.AvgTokensPerCluster() != 1 {
		t.Fatalf("clustering disabled but avg tokens/cluster = %v", tab.AvgTokensPerCluster())
	}
}

func TestReSVAdaptiveRatioVariesAcrossLayers(t *testing.T) {
	// Fig. 20's core claim: per-layer ratios differ (scores distributions
	// vary by layer). With a multi-layer model we expect non-identical
	// ratios across layers.
	mcfg := model.DefaultConfig()
	mcfg.Layers = 4
	m := model.New(mcfg)
	cfg := DefaultConfig()
	r := New(mcfg, cfg)
	rng := mathx.NewRNG(6)
	for _, f := range driftFrames(10, 8, mcfg.Dim, 0.95, rng) {
		m.Forward(f, r, model.StageFrame, false)
	}
	ratios := map[string]bool{}
	for _, pl := range r.Stats().PerLayer {
		// Bucket to 3 decimals to detect "all identical".
		ratios[bucket3(pl.Value())] = true
	}
	if len(ratios) < 2 {
		t.Fatalf("per-layer ratios all identical: %v", r.Stats().PerLayer)
	}
}

func bucket3(v float64) string {
	return string(rune('0'+int(v*1000)%10)) + string(rune('0'+int(v*100)%10)) + string(rune('0'+int(v*10)%10))
}

func TestReSVRecentWindowAlwaysIncluded(t *testing.T) {
	mcfg := model.DefaultConfig()
	m := model.New(mcfg)
	cfg := DefaultConfig()
	cfg.RecentWindow = 5
	r := New(mcfg, cfg)
	rng := mathx.NewRNG(7)
	frames := driftFrames(3, 6, mcfg.Dim, 0.97, rng)
	for _, f := range frames {
		m.Forward(f, r, model.StageFrame, false)
	}
	base := m.Pos()
	q := frameInput(2, mcfg.Dim, rng)
	sel := r.SelectTokens(0, m.Cache(0), q, base, model.StageText)
	inSel := map[int]bool{}
	for _, tok := range sel {
		inSel[tok] = true
	}
	for tok := base - 5; tok < base; tok++ {
		if !inSel[tok] {
			t.Fatalf("recent token %d missing from selection", tok)
		}
	}
}

func TestReSVHierarchyAccounting(t *testing.T) {
	mcfg := model.DefaultConfig()
	m := model.New(mcfg)
	r := New(mcfg, DefaultConfig())
	r.AttachHierarchy(m, 10, kvcache.TierStorage)
	rng := mathx.NewRNG(8)
	for _, f := range driftFrames(8, 6, mcfg.Dim, 0.9, rng) {
		m.Forward(f, r, model.StageFrame, false)
	}
	log := r.TransferLog()
	if log.OffloadBytes == 0 {
		t.Fatal("capacity 10 with 48 tokens must offload")
	}
	if log.FetchBytes == 0 {
		t.Fatal("selections beyond device tier must fetch")
	}
	if log.FetchSegments == 0 || log.FetchSegments > log.FetchTokens {
		t.Fatalf("segments %d vs tokens %d inconsistent", log.FetchSegments, log.FetchTokens)
	}
}

func TestReSVDeterministicAcrossRuns(t *testing.T) {
	run := func() []int {
		mcfg := model.DefaultConfig()
		m := model.New(mcfg)
		r := New(mcfg, DefaultConfig())
		rng := mathx.NewRNG(9)
		frames := driftFrames(4, 5, mcfg.Dim, 0.97, rng)
		for _, f := range frames[:3] {
			m.Forward(f, r, model.StageFrame, false)
		}
		return r.SelectTokens(1, m.Cache(1), frames[3], m.Pos(), model.StageFrame)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("selection lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("selections differ across identical runs")
		}
	}
}

func TestReSVLowerThresholdSelectsFewer(t *testing.T) {
	run := func(th float64) float64 {
		mcfg := model.DefaultConfig()
		m := model.New(mcfg)
		cfg := DefaultConfig()
		cfg.ThWics = th
		cfg.Buckets = 0 // exact
		r := New(mcfg, cfg)
		rng := mathx.NewRNG(10)
		for _, f := range driftFrames(8, 6, mcfg.Dim, 0.95, rng) {
			m.Forward(f, r, model.StageFrame, false)
		}
		return r.Stats().Frame.RetrievalRatio()
	}
	low, high := run(0.3), run(0.95)
	if low >= high {
		t.Fatalf("ratio(0.3)=%v should be < ratio(0.95)=%v", low, high)
	}
}

func TestReSVTextStageTracked(t *testing.T) {
	mcfg := model.DefaultConfig()
	m := model.New(mcfg)
	r := New(mcfg, DefaultConfig())
	rng := mathx.NewRNG(11)
	for _, f := range driftFrames(4, 6, mcfg.Dim, 0.97, rng) {
		m.Forward(f, r, model.StageFrame, false)
	}
	m.Forward(frameInput(3, mcfg.Dim, rng), r, model.StageText, false)
	if r.Stats().Text.CandidateTokens == 0 {
		t.Fatal("text stage stats not recorded")
	}
}

func TestRatioValue(t *testing.T) {
	if (Ratio{}).Value() != 1 {
		t.Fatal("empty ratio should be 1")
	}
	if (Ratio{Selected: 1, Candidate: 4}).Value() != 0.25 {
		t.Fatal("ratio arithmetic wrong")
	}
}

func TestStageStatsHelpers(t *testing.T) {
	s := StageStats{SelectedTokens: 30, CandidateTokens: 100, ExaminedFraction: 0.32, Calls: 2}
	if s.RetrievalRatio() != 0.3 {
		t.Fatal("retrieval ratio wrong")
	}
	if s.AvgExaminedFraction() != 0.16 {
		t.Fatal("examined fraction wrong")
	}
	var empty StageStats
	if empty.RetrievalRatio() != 1 || empty.AvgExaminedFraction() != 0 {
		t.Fatal("empty stage stats wrong")
	}
}

func TestReSVResetMatchesFresh(t *testing.T) {
	mcfg := model.DefaultConfig()
	rng := mathx.NewRNG(31)
	frames := driftFrames(4, 5, mcfg.Dim, 0.97, rng)

	run := func(r *ReSV) []int {
		m := model.New(mcfg)
		for _, f := range frames[:3] {
			m.Forward(f, r, model.StageFrame, false)
		}
		return r.SelectTokens(0, m.Cache(0), frames[3], m.Pos(), model.StageFrame)
	}

	used := New(mcfg, DefaultConfig())
	run(used) // dirty the state
	used.Reset()
	got := append([]int(nil), run(used)...)
	want := run(New(mcfg, DefaultConfig()))
	if len(got) != len(want) {
		t.Fatalf("reset selection length %d vs fresh %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("reset instance diverges from fresh instance")
		}
	}
}

// TestReSVResetDetachesHierarchyAndClearsStats pins the rest of the "reset
// equals fresh" contract: statistics zeroed, transfer accounting and tier
// hierarchies dropped (New does not attach one), buffers reusable.
func TestReSVResetDetachesHierarchyAndClearsStats(t *testing.T) {
	mcfg := model.DefaultConfig()
	m := model.New(mcfg)
	r := New(mcfg, DefaultConfig())
	r.AttachHierarchy(m, 10, kvcache.TierStorage)
	rng := mathx.NewRNG(33)
	for _, f := range driftFrames(6, 6, mcfg.Dim, 0.9, rng) {
		m.Forward(f, r, model.StageFrame, false)
	}
	if r.TransferLog().OffloadBytes == 0 {
		t.Fatal("precondition: session should have offloaded")
	}
	r.Reset()
	if log := r.TransferLog(); log != (kvcache.TransferLog{}) {
		t.Fatalf("reset retains transfer log: %+v", log)
	}
	st := r.Stats()
	if st.Frame.Calls != 0 || st.Frame.SelectedTokens != 0 || st.Text.Calls != 0 {
		t.Fatalf("reset retains stage stats: %+v", st.Frame)
	}
	for _, pl := range st.PerLayer {
		if pl.Selected != 0 || pl.Candidate != 0 {
			t.Fatal("reset retains per-layer stats")
		}
	}
	// The reset instance must serve a fresh session without a hierarchy.
	m2 := model.New(mcfg)
	for _, f := range driftFrames(3, 5, mcfg.Dim, 0.97, mathx.NewRNG(34)) {
		m2.Forward(f, r, model.StageFrame, false)
	}
	if r.TransferLog() != (kvcache.TransferLog{}) {
		t.Fatal("reset instance still records transfers")
	}
}
