package core

import (
	"reflect"
	"testing"

	"vrex/internal/mathx"
	"vrex/internal/model"
)

// TestReSVParallelEquivalence drives identical sessions through a sequential
// (Workers=1) and a sharded (Workers=8) retriever and requires exactly the
// same selections and statistics — the engine's core guarantee.
func TestReSVParallelEquivalence(t *testing.T) {
	mcfg := model.DefaultConfig()
	run := func(workers int) (*model.Model, *ReSV) {
		cfg := DefaultConfig()
		cfg.Workers = workers
		m := model.New(mcfg)
		r := New(mcfg, cfg)
		rng := mathx.NewRNG(11)
		for _, f := range driftFrames(8, 6, mcfg.Dim, 0.97, rng) {
			m.Forward(f, r, model.StageFrame, false)
		}
		q := frameInput(4, mcfg.Dim, rng)
		m.Forward(q, r, model.StageText, true)
		return m, r
	}
	mSeq, rSeq := run(1)
	mPar, rPar := run(8)

	if mSeq.Pos() != mPar.Pos() {
		t.Fatalf("positions diverged: %d vs %d", mSeq.Pos(), mPar.Pos())
	}
	if !reflect.DeepEqual(*rSeq.Stats(), *rPar.Stats()) {
		t.Fatalf("stats diverged:\nseq: %+v\npar: %+v", *rSeq.Stats(), *rPar.Stats())
	}
	for l := 0; l < mcfg.Layers; l++ {
		a, b := rSeq.HCTable(l), rPar.HCTable(l)
		if a.NumClusters() != b.NumClusters() {
			t.Fatalf("layer %d cluster count diverged: %d vs %d",
				l, a.NumClusters(), b.NumClusters())
		}
		for ci := range a.Clusters {
			if !reflect.DeepEqual(a.Clusters[ci].TokenIdxs, b.Clusters[ci].TokenIdxs) {
				t.Fatalf("layer %d cluster %d membership diverged", l, ci)
			}
		}
	}
}

// TestReSVSelectTokensEquivalence compares the raw selection lists, which is
// where any ordering nondeterminism would surface first.
func TestReSVSelectTokensEquivalence(t *testing.T) {
	mcfg := model.DefaultConfig()
	type sel struct {
		layer  int
		tokens []int
	}
	collect := func(workers int) []sel {
		cfg := DefaultConfig()
		cfg.Workers = workers
		m := model.New(mcfg)
		r := New(mcfg, cfg)
		rng := mathx.NewRNG(5)
		frames := driftFrames(6, 6, mcfg.Dim, 0.97, rng)
		var out []sel
		for fi, f := range frames {
			m.Forward(f, r, model.StageFrame, false)
			if fi < 2 {
				continue // no past yet on the first frames
			}
			base := m.Pos()
			q := frameInput(3, mcfg.Dim, mathx.NewRNG(uint64(100+fi)))
			for l := 0; l < mcfg.Layers; l++ {
				toks := r.SelectTokens(l, m.Cache(l), q, base, model.StageText)
				out = append(out, sel{layer: l, tokens: append([]int(nil), toks...)})
			}
		}
		return out
	}
	seq := collect(1)
	for _, w := range []int{2, 8} {
		par := collect(w)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("selections diverged between workers=1 and workers=%d", w)
		}
	}
}
