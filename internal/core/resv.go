// Package core implements ReSV, the paper's primary contribution: a
// training-free dynamic KV cache retrieval algorithm for the iterative
// prefill stage of streaming video LLMs (Sec. IV). ReSV combines
//
//   - hash-bit key clustering (internal/hashbit): arriving frame keys are
//     grouped with spatially/temporally similar past keys via hyperplane
//     signatures and Hamming distance, maintaining a per-layer HC table; and
//   - WiCSum thresholding (internal/wicsum): per query token and attention
//     head, clusters are scored against the query (Q x Key_cluster^T) and
//     the smallest high-mass prefix is selected adaptively — no fixed top-k.
//
// The selected clusters are mapped back to token indices through the HC
// table and fetched (with KVMU-style cluster-contiguous layout accounting)
// for light attention in the execution stage (Fig. 6).
//
// ReSV implements model.Retriever, so it drops into the functional
// transformer; its Stats feed the performance simulator and the Fig. 20 /
// Table II experiments.
package core

import (
	"fmt"
	"math"

	"vrex/internal/hashbit"
	"vrex/internal/kvcache"
	"vrex/internal/mathx"
	"vrex/internal/model"
	"vrex/internal/parallel"
	"vrex/internal/tensor"
	"vrex/internal/wicsum"
)

// Config holds ReSV's hyperparameters. The defaults are the paper's
// evaluation setting (Sec. VI-E): N_hp = 32, Th_hd = 7, Th_r-wics = 0.3.
type Config struct {
	// NHp is the number of random hyperplanes (signature bits).
	NHp int
	// ThHD is the Hamming-distance clustering threshold.
	ThHD int
	// ThWics is the WiCSum mass ratio Th_r-wics in (0, 1].
	ThWics float64
	// Buckets enables the WTU's early-exit bucket sorter when > 0 (the
	// hardware uses 20 buckets); 0 selects the exact software sort.
	Buckets int
	// RecentWindow tokens immediately preceding the current chunk are always
	// attended (they are device-resident "recent KV" in Fig. 12).
	RecentWindow int
	// DisableClustering runs WiCSum over individual tokens (every token its
	// own cluster) — the "ReSV w/o clustering" ablation of Fig. 19.
	DisableClustering bool
	// Seed draws the hyperplanes.
	Seed uint64
	// Workers shards the per-head WiCSum scoring and the HC-table candidate
	// scan across goroutines: 0 uses GOMAXPROCS, 1 restores the sequential
	// kernel. Selections are identical for any worker count.
	Workers int
}

// DefaultConfig returns the paper's evaluation hyperparameters.
func DefaultConfig() Config {
	return Config{NHp: 32, ThHD: 7, ThWics: 0.3, Buckets: 20, RecentWindow: 0, Seed: 1}
}

// Validate checks hyperparameter sanity.
func (c Config) Validate() error {
	switch {
	case c.NHp <= 0:
		return fmt.Errorf("core: NHp must be positive")
	case c.ThHD < 0:
		return fmt.Errorf("core: ThHD must be non-negative")
	case c.ThWics <= 0 || c.ThWics > 1:
		return fmt.Errorf("core: ThWics must be in (0,1]")
	case c.Buckets < 0:
		return fmt.Errorf("core: Buckets must be non-negative")
	case c.RecentWindow < 0:
		return fmt.Errorf("core: RecentWindow must be non-negative")
	}
	return nil
}

// layerState is ReSV's per-decoder-layer working set.
type layerState struct {
	clusterer *hashbit.Clusterer
	layout    *kvcache.ClusterLayout
	hier      *kvcache.Hierarchy
}

// ReSV is the retriever. One instance serves one model session; create a
// fresh instance (or call Reset) per session.
type ReSV struct {
	cfg      Config
	modelCfg model.Config
	layers   []*layerState
	selector wicsum.Selector
	stats    Stats
	rng      *mathx.RNG
}

var _ model.Retriever = (*ReSV)(nil)

// New creates a ReSV retriever for a model with the given configuration.
func New(modelCfg model.Config, cfg Config) *ReSV {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if err := modelCfg.Validate(); err != nil {
		panic(err)
	}
	r := &ReSV{
		cfg:      cfg,
		modelCfg: modelCfg,
		selector: wicsum.Selector{Ratio: cfg.ThWics, Buckets: cfg.Buckets, Workers: cfg.Workers},
		rng:      mathx.NewRNG(cfg.Seed),
		stats:    NewStats(modelCfg.Layers, modelCfg.Heads),
	}
	thHD := cfg.ThHD
	if cfg.DisableClustering {
		// With a strict < 0 threshold nothing ever joins: every token forms
		// its own singleton cluster, reducing WiCSum to per-token selection.
		thHD = 0
	}
	for l := 0; l < modelCfg.Layers; l++ {
		r.layers = append(r.layers, &layerState{
			clusterer: hashbit.NewClusterer(modelCfg.KVDim(), cfg.NHp, thHD, r.rng.Split()),
			layout:    kvcache.NewClusterLayout(),
		})
	}
	return r
}

// AttachHierarchy enables tiered-memory accounting: each layer's cache gets
// a device budget of capacityTokens with spill to offTier, and selections
// are fetched through the hierarchy (transfer bytes/segments recorded).
// Call once, before the first Forward.
func (r *ReSV) AttachHierarchy(m *model.Model, capacityTokens int, offTier kvcache.Tier) {
	for l, ls := range r.layers {
		ls.hier = kvcache.NewHierarchy(m.Cache(l), capacityTokens, offTier, 2)
	}
}

// Stats returns the accumulated selection statistics.
func (r *ReSV) Stats() *Stats { return &r.stats }

// TransferLog returns the summed hierarchy transfer log across layers
// (zero value if no hierarchy is attached).
func (r *ReSV) TransferLog() kvcache.TransferLog {
	var sum kvcache.TransferLog
	for _, ls := range r.layers {
		if ls.hier != nil {
			sum.Add(ls.hier.Log)
		}
	}
	return sum
}

// HCTable exposes layer l's hash cluster table (experiments inspect it).
func (r *ReSV) HCTable(l int) *hashbit.HCTable { return r.layers[l].clusterer.Table }

// ObserveAppend implements model.Retriever: cluster the chunk's new keys
// into the layer's HC table, refresh the KVMU layout, and enforce the device
// budget.
func (r *ReSV) ObserveAppend(layer int, cache *kvcache.LayerCache, base, n int) {
	ls := r.layers[layer]
	keys := tensor.NewMatrix(n, cache.Dim)
	for i := 0; i < n; i++ {
		copy(keys.Row(i), cache.Key(base+i))
	}
	ls.clusterer.AddFrame(keys, base)
	// Refresh the cluster-contiguous layout (the KVMU reorders KV storage to
	// the latest clustering each frame).
	clusters := make([][]int, ls.clusterer.Table.NumClusters())
	for ci, c := range ls.clusterer.Table.Clusters {
		clusters[ci] = c.TokenIdxs
	}
	ls.layout.SetClusters(clusters)
	if ls.hier != nil {
		ls.hier.Enforce()
	}
}

// SelectTokens implements model.Retriever: run KV prediction (Fig. 6) for
// the chunk's queries and return the selected past-token indices.
func (r *ReSV) SelectTokens(layer int, cache *kvcache.LayerCache, queries *tensor.Matrix, base int, stage model.Stage) []int {
	if base == 0 {
		return nil
	}
	ls := r.layers[layer]
	headDim := r.modelCfg.HeadDim()
	group := r.modelCfg.Heads / r.modelCfg.KVHeads
	sharp := r.modelCfg.Sharpness
	if sharp == 0 {
		sharp = 1
	}
	invSqrt := float32(sharp / math.Sqrt(float64(headDim)))

	table := ls.clusterer.Table
	// Candidate clusters: those containing at least one past token. Clusters
	// composed purely of in-chunk tokens are skipped (in-chunk attention is
	// causal and automatic). The HC-table scan is sharded across the pool
	// (each cluster's past-token count is independent); the serial compaction
	// afterwards keeps candidate order identical to the sequential scan.
	scanWorkers := r.cfg.Workers
	if len(table.Clusters) < 64 {
		scanWorkers = 1
	}
	pastCounts := parallel.Map(scanWorkers, len(table.Clusters), func(i int) int {
		past := 0
		for _, tok := range table.Clusters[i].TokenIdxs {
			if tok < base {
				past++
			}
		}
		return past
	})
	var cands []candidate
	for i, c := range table.Clusters {
		if pastCounts[i] > 0 {
			cands = append(cands, candidate{id: c.ID, count: pastCounts[i]})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	counts := make([]int, len(cands))
	for i, c := range cands {
		counts[i] = c.count
	}

	// Score matrix: one row per (query token, head) pair; columns = candidate
	// clusters. Scores are exp-normalised per row so WiCSum accumulates
	// attention mass. Rows are independent, so the per-head scoring — the
	// KVPU's per-head parallelism in hardware — is sharded across the pool
	// with each row written to its index slot (order never depends on
	// scheduling).
	nRows := queries.Rows * r.modelCfg.Heads
	rowWorkers := r.cfg.Workers
	if nRows*len(cands) < 2048 {
		rowWorkers = 1
	}
	masses := make([][]float32, nRows)
	rowHead := make([]int, nRows)
	parallel.ForEach(rowWorkers, nRows, func(row int) {
		qi := row / r.modelCfg.Heads
		h := row % r.modelCfg.Heads
		kvh := h / group
		qrow := queries.Row(qi)
		qh := qrow[h*headDim : (h+1)*headDim]
		scores := make([]float32, len(cands))
		for ci, c := range cands {
			rep := table.Clusters[c.id].RepKey[kvh*headDim : (kvh+1)*headDim]
			scores[ci] = float32(mathx.Dot(qh, rep)) * invSqrt
		}
		mass := make([]float32, len(cands))
		mathx.ExpNormalize(mass, scores)
		masses[row] = mass
		rowHead[row] = h
	})

	sel := r.selector.SelectMatrix(masses, counts)

	// Union of selected clusters -> past-token indices.
	selectedClusters := make([]int, len(sel.Union))
	for i, ci := range sel.Union {
		selectedClusters[i] = cands[ci].id
	}
	tokenSet := make(map[int]bool)
	for _, tok := range table.TokensOf(selectedClusters) {
		if tok < base {
			tokenSet[tok] = true
		}
	}
	// Recent window is always resident and attended.
	lo := base - r.cfg.RecentWindow
	if lo < 0 {
		lo = 0
	}
	for tok := lo; tok < base; tok++ {
		tokenSet[tok] = true
	}
	tokens := make([]int, 0, len(tokenSet))
	for tok := range tokenSet {
		tokens = append(tokens, tok)
	}
	sortInts(tokens)

	r.recordStats(layer, stage, rowHead, sel, cands, base, len(tokens))

	if ls.hier != nil {
		ls.hier.Fetch(tokens, ls.layout)
		ls.hier.Release(tokens, base-r.cfg.RecentWindow)
	}
	return tokens
}

func sortInts(xs []int) {
	// Insertion sort: selections are mostly ordered already (cluster table is
	// in creation order) and short.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// recordStats folds one selection into the ratio statistics.
func (r *ReSV) recordStats(layer int, stage model.Stage, rowHead []int, sel wicsum.MatrixSelection, cands []candidate, base, selectedTokens int) {
	ss := r.stats.stage(stage)
	ss.SelectedTokens += int64(selectedTokens)
	ss.CandidateTokens += int64(base)
	ss.Rows += int64(len(sel.Rows))
	ss.ExaminedFraction += sel.ExaminedFraction
	ss.Calls++

	r.stats.PerLayer[layer].Selected += int64(selectedTokens)
	r.stats.PerLayer[layer].Candidate += int64(base)

	// Per-head ratios: union of each head's rows.
	perHeadTokens := make([]map[int]bool, r.modelCfg.Heads)
	for i := range perHeadTokens {
		perHeadTokens[i] = make(map[int]bool)
	}
	for rowIdx, rs := range sel.Rows {
		h := rowHead[rowIdx]
		for _, ci := range rs.Selected {
			for _, tok := range r.layers[layer].clusterer.Table.Clusters[cands[ci].id].TokenIdxs {
				if tok < base {
					perHeadTokens[h][tok] = true
				}
			}
		}
	}
	for h, set := range perHeadTokens {
		r.stats.PerHead[h].Selected += int64(len(set))
		r.stats.PerHead[h].Candidate += int64(base)
	}
}

// Reset clears all per-session state (HC tables, layouts, statistics,
// transfer logs) so the retriever can serve a fresh session. The hyperplanes
// are redrawn from the original seed, so a reset instance behaves exactly
// like a newly constructed one.
func (r *ReSV) Reset() {
	fresh := New(r.modelCfg, r.cfg)
	r.layers = fresh.layers
	r.stats = fresh.stats
	r.rng = fresh.rng
}
