// Package core implements ReSV, the paper's primary contribution: a
// training-free dynamic KV cache retrieval algorithm for the iterative
// prefill stage of streaming video LLMs (Sec. IV). ReSV combines
//
//   - hash-bit key clustering (internal/hashbit): arriving frame keys are
//     grouped with spatially/temporally similar past keys via hyperplane
//     signatures and Hamming distance, maintaining a per-layer HC table; and
//   - WiCSum thresholding (internal/wicsum): per query token and attention
//     head, clusters are scored against the query (Q x Key_cluster^T) and
//     the smallest high-mass prefix is selected adaptively — no fixed top-k.
//
// The selected clusters are mapped back to token indices through the HC
// table and fetched (with KVMU-style cluster-contiguous layout accounting)
// for light attention in the execution stage (Fig. 6).
//
// Like the hardware, the software kernel never redoes work as the stream
// grows: the HC table's candidate set and the KVMU layout are maintained
// incrementally as frames arrive, cluster scoring is batched through the
// sharded tensor matmul over per-layer representative-key mirrors, and all
// per-frame working sets (score rows, selection bitsets, sort buffers) live
// in reusable per-layer scratch arenas — steady-state SelectTokens performs
// zero heap allocations on the sequential path (pinned by
// TestSelectTokensSteadyStateAllocFree).
//
// ReSV implements model.Retriever, so it drops into the functional
// transformer; its Stats feed the performance simulator and the Fig. 20 /
// Table II experiments.
package core

import (
	"fmt"
	"math"
	"slices"

	"vrex/internal/hashbit"
	"vrex/internal/kvcache"
	"vrex/internal/mathx"
	"vrex/internal/model"
	"vrex/internal/parallel"
	"vrex/internal/tensor"
	"vrex/internal/wicsum"
)

// Config holds ReSV's hyperparameters. The defaults are the paper's
// evaluation setting (Sec. VI-E): N_hp = 32, Th_hd = 7, Th_r-wics = 0.3.
type Config struct {
	// NHp is the number of random hyperplanes (signature bits).
	NHp int
	// ThHD is the Hamming-distance clustering threshold.
	ThHD int
	// ThWics is the WiCSum mass ratio Th_r-wics in (0, 1].
	ThWics float64
	// Buckets enables the WTU's early-exit bucket sorter when > 0 (the
	// hardware uses 20 buckets); 0 selects the exact software sort.
	Buckets int
	// RecentWindow tokens immediately preceding the current chunk are always
	// attended (they are device-resident "recent KV" in Fig. 12).
	RecentWindow int
	// DisableClustering runs WiCSum over individual tokens (every token its
	// own cluster) — the "ReSV w/o clustering" ablation of Fig. 19.
	DisableClustering bool
	// Seed draws the hyperplanes.
	Seed uint64
	// Workers shards the per-head WiCSum thresholding and score finishing
	// across goroutines: 0 uses GOMAXPROCS, 1 restores the sequential
	// kernel. (The batched Q x RepKey^T product shards through the tensor
	// package's worker setting.) Selections are identical for any count.
	Workers int
}

// DefaultConfig returns the paper's evaluation hyperparameters.
func DefaultConfig() Config {
	return Config{NHp: 32, ThHD: 7, ThWics: 0.3, Buckets: 20, RecentWindow: 0, Seed: 1}
}

// Validate checks hyperparameter sanity.
func (c Config) Validate() error {
	switch {
	case c.NHp <= 0:
		return fmt.Errorf("core: NHp must be positive")
	case c.ThHD < 0:
		return fmt.Errorf("core: ThHD must be non-negative")
	case c.ThWics <= 0 || c.ThWics > 1:
		return fmt.Errorf("core: ThWics must be in (0,1]")
	case c.Buckets < 0:
		return fmt.Errorf("core: Buckets must be non-negative")
	case c.RecentWindow < 0:
		return fmt.Errorf("core: RecentWindow must be non-negative")
	}
	return nil
}

// layerScratch is a layer's reusable working set: the KVPU/WTU stream
// through fixed on-chip buffers in hardware, and these arenas play the same
// role in software. Buffers grow monotonically with the session and are
// reused across frames, so the steady-state hot path allocates nothing.
type layerScratch struct {
	// keyView is a staging matrix header over the cache's own key rows
	// (ObserveAppend clusters in place instead of copying the chunk out).
	keyView tensor.Matrix
	// repMirror[kvh] mirrors every cluster's representative key segment for
	// kv head kvh, row per cluster — the B operand of the batched scoring
	// matmul. Rows are refreshed incrementally from the HC table's pending
	// set as running means move.
	repMirror []tensor.Matrix
	// repView[kvh] is a persistent matrix header exposing the candidate
	// prefix of repMirror[kvh] to the matmul.
	repView []tensor.Matrix
	// qHead gathers the chunk's query segments for one kv head.
	qHead tensor.Matrix
	// scores holds the Q x RepKey^T product for one kv head.
	scores tensor.Matrix
	// counts holds the per-candidate past-token counts WiCSum weights by.
	counts []int
	// massData is the flat arena behind masses, one exp-normalised score row
	// per (query token, head) pair.
	massData []float32
	masses   [][]float32
	// tokens is the selection buffer returned to the caller (valid until the
	// next SelectTokens call on this layer).
	tokens []int
	// tokenBits is a bitset over past tokens deduplicating the selected
	// cluster expansion against the recent window. Invariant: all bits are
	// zero between SelectTokens calls.
	tokenBits []uint64
	// headMark/headEpoch stamp (head, cluster) pairs seen in the current
	// call's per-head union (recordStats) without any clearing pass.
	headMark  []uint64
	headEpoch uint64
}

// layerState is ReSV's per-decoder-layer working set.
type layerState struct {
	clusterer *hashbit.Clusterer
	layout    *kvcache.ClusterLayout
	hier      *kvcache.Hierarchy
	scratch   layerScratch
}

// ReSV is the retriever. One instance serves one model session; create a
// fresh instance (or call Reset) per session.
type ReSV struct {
	cfg      Config
	modelCfg model.Config
	layers   []*layerState
	selector wicsum.Selector
	stats    Stats
	rng      *mathx.RNG
}

var _ model.Retriever = (*ReSV)(nil)

// New creates a ReSV retriever for a model with the given configuration.
func New(modelCfg model.Config, cfg Config) *ReSV {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if err := modelCfg.Validate(); err != nil {
		panic(err)
	}
	r := &ReSV{
		cfg:      cfg,
		modelCfg: modelCfg,
		selector: wicsum.Selector{Ratio: cfg.ThWics, Buckets: cfg.Buckets, Workers: cfg.Workers},
		rng:      mathx.NewRNG(cfg.Seed),
		stats:    NewStats(modelCfg.Layers, modelCfg.Heads),
	}
	thHD := cfg.ThHD
	if cfg.DisableClustering {
		// With a strict < 0 threshold nothing ever joins: every token forms
		// its own singleton cluster, reducing WiCSum to per-token selection.
		thHD = 0
	}
	headDim := modelCfg.HeadDim()
	for l := 0; l < modelCfg.Layers; l++ {
		ls := &layerState{
			clusterer: hashbit.NewClusterer(modelCfg.KVDim(), cfg.NHp, thHD, r.rng.Split()),
			layout:    kvcache.NewClusterLayout(),
		}
		ls.scratch.repMirror = make([]tensor.Matrix, modelCfg.KVHeads)
		ls.scratch.repView = make([]tensor.Matrix, modelCfg.KVHeads)
		for kvh := range ls.scratch.repMirror {
			ls.scratch.repMirror[kvh].Cols = headDim
			ls.scratch.repView[kvh].Cols = headDim
		}
		r.layers = append(r.layers, ls)
	}
	return r
}

// AttachHierarchy enables tiered-memory accounting: each layer's cache gets
// a device budget of capacityTokens with spill to offTier, and selections
// are fetched through the hierarchy (transfer bytes/segments recorded).
// Call once, before the first Forward.
func (r *ReSV) AttachHierarchy(m *model.Model, capacityTokens int, offTier kvcache.Tier) {
	for l, ls := range r.layers {
		ls.hier = kvcache.NewHierarchy(m.Cache(l), capacityTokens, offTier, 2)
	}
}

// ScaleBudget implements the degradation plane's budget override surface
// (retrieval.BudgetScaler): the WiCSum mass-ratio threshold Th_r-wics is set
// to scale times its configured value, so subsequent selections stop at a
// proportionally smaller high-mass prefix. Absolute semantics — repeated
// calls replace the previous scale, and scale 1 restores the configured
// threshold exactly. Out-of-range scales clamp.
func (r *ReSV) ScaleBudget(scale float64) {
	if scale > 1 {
		scale = 1
	}
	if scale <= 0 {
		scale = 1e-6
	}
	r.selector.Ratio = r.cfg.ThWics * scale
}

// Stats returns the accumulated selection statistics.
func (r *ReSV) Stats() *Stats { return &r.stats }

// TransferLog returns the summed hierarchy transfer log across layers
// (zero value if no hierarchy is attached).
func (r *ReSV) TransferLog() kvcache.TransferLog {
	var sum kvcache.TransferLog
	for _, ls := range r.layers {
		if ls.hier != nil {
			sum.Add(ls.hier.Log)
		}
	}
	return sum
}

// HCTable exposes layer l's hash cluster table (experiments inspect it).
func (r *ReSV) HCTable(l int) *hashbit.HCTable { return r.layers[l].clusterer.Table }

// ObserveAppend implements model.Retriever: cluster the chunk's new keys
// into the layer's HC table, extend the KVMU layout incrementally, and
// enforce the device budget. Clustering reads the cache's key rows in place
// (no per-frame staging copy), and the layout grows by O(1) bookkeeping per
// token instead of a full rebuild.
func (r *ReSV) ObserveAppend(layer int, cache *kvcache.LayerCache, base, n int) {
	ls := r.layers[layer]
	kv := &ls.scratch.keyView
	kv.Rows, kv.Cols = n, cache.Dim
	kv.Data = cache.KeySpan(base, n)
	ids := ls.clusterer.AddFrame(kv, base)
	for i, id := range ids {
		ls.layout.Add(id, base+i)
	}
	if ls.hier != nil {
		ls.hier.Enforce()
	}
}

// SelectTokens implements model.Retriever: run KV prediction (Fig. 6) for
// the chunk's queries and return the selected past-token indices. The
// returned slice is owned by the retriever and valid until the next
// SelectTokens call on the same layer.
func (r *ReSV) SelectTokens(layer int, cache *kvcache.LayerCache, queries *tensor.Matrix, base int, stage model.Stage) []int {
	if base == 0 {
		return nil
	}
	ls := r.layers[layer]
	sc := &ls.scratch
	headDim := r.modelCfg.HeadDim()
	heads := r.modelCfg.Heads
	kvHeads := r.modelCfg.KVHeads
	group := heads / kvHeads
	sharp := r.modelCfg.Sharpness
	if sharp == 0 {
		sharp = 1
	}
	invSqrt := float32(sharp / math.Sqrt(float64(headDim)))

	table := ls.clusterer.Table

	// Refresh the representative-key mirrors for clusters whose running
	// means moved since the last call (the HC table's pending set), then
	// advance the past boundary. Candidate clusters — those containing at
	// least one past token — are exactly the leading PastClusters() table
	// rows, with PastCount() past members each; no per-frame rescan.
	nClusters := table.NumClusters()
	for kvh := range sc.repMirror {
		growMirror(&sc.repMirror[kvh], nClusters, headDim)
	}
	for _, id := range table.PendingClusters() {
		rep := table.Clusters[id].RepKey
		for kvh := range sc.repMirror {
			copy(sc.repMirror[kvh].Row(id), rep[kvh*headDim:(kvh+1)*headDim])
		}
	}
	table.AdvancePast(base)
	nCands := table.PastClusters()
	if nCands == 0 {
		return nil
	}
	sc.counts = growInts(sc.counts, nCands)
	for ci := 0; ci < nCands; ci++ {
		sc.counts[ci] = table.PastCount(ci)
	}

	// Score matrix: one row per (query token, head) pair; columns = candidate
	// clusters. The Q x RepKey^T scores run per kv head through the sharded
	// tensor matmul over the mirror (the KVPU's batched dataflow); each
	// product row is then scaled and exp-normalised into its (query, head)
	// mass row so WiCSum accumulates attention mass. Row order never depends
	// on scheduling.
	nq := queries.Rows
	nRows := nq * heads
	prodRows := nq * group
	if cap(sc.massData) < nRows*nCands {
		sc.massData = make([]float32, nRows*nCands)
	}
	if cap(sc.masses) < nRows {
		sc.masses = make([][]float32, nRows)
	}
	masses := sc.masses[:nRows]
	for row := 0; row < nRows; row++ {
		masses[row] = sc.massData[row*nCands : (row+1)*nCands]
	}
	rowWorkers := r.cfg.Workers
	if prodRows*nCands < 2048 {
		rowWorkers = 1
	}
	sc.qHead.Reshape(prodRows, headDim)
	sc.scores.Reshape(prodRows, nCands)
	for kvh := 0; kvh < kvHeads; kvh++ {
		for qi := 0; qi < nq; qi++ {
			qrow := queries.Row(qi)
			for g := 0; g < group; g++ {
				h := kvh*group + g
				copy(sc.qHead.Row(qi*group+g), qrow[h*headDim:(h+1)*headDim])
			}
		}
		rv := &sc.repView[kvh]
		rv.Rows, rv.Cols = nCands, headDim
		rv.Data = sc.repMirror[kvh].Data[:nCands*headDim]
		tensor.MatMulTInto(&sc.scores, &sc.qHead, rv)
		if parallel.Workers(rowWorkers) <= 1 {
			for pr := 0; pr < prodRows; pr++ {
				finishScoreRow(sc, masses, pr, kvh, group, heads, invSqrt)
			}
		} else {
			parallel.ForEach(rowWorkers, prodRows, func(pr int) {
				finishScoreRow(sc, masses, pr, kvh, group, heads, invSqrt)
			})
		}
	}

	sel := r.selector.SelectMatrix(masses, sc.counts)

	// Union of selected clusters -> past-token indices. Clusters partition
	// tokens, so their expansions never overlap; the bitset only deduplicates
	// the always-attended recent window against them, and all marks are
	// cleared again before returning.
	words := (base + 63) / 64
	if cap(sc.tokenBits) < words {
		sc.tokenBits = make([]uint64, words)
	}
	bits := sc.tokenBits[:words]
	tokens := sc.tokens[:0]
	for _, ci := range sel.Union {
		for _, tok := range table.PastTokens(ci) {
			bits[tok>>6] |= 1 << (uint(tok) & 63)
			tokens = append(tokens, tok)
		}
	}
	nClusterToks := len(tokens)
	lo := base - r.cfg.RecentWindow
	if lo < 0 {
		lo = 0
	}
	for tok := lo; tok < base; tok++ {
		if bits[tok>>6]&(1<<(uint(tok)&63)) == 0 {
			tokens = append(tokens, tok)
		}
	}
	for _, tok := range tokens[:nClusterToks] {
		bits[tok>>6] &^= 1 << (uint(tok) & 63)
	}
	sortInts(tokens)
	sc.tokens = tokens

	r.recordStats(layer, stage, sel, base, len(tokens), nCands)

	if ls.hier != nil {
		ls.hier.Fetch(tokens, ls.layout)
		ls.hier.Release(tokens, base-r.cfg.RecentWindow)
	}
	return tokens
}

// finishScoreRow scales one kv head's product row into its (query, head)
// mass row and exp-normalises it.
//
//vrex:noalloc
func finishScoreRow(sc *layerScratch, masses [][]float32, pr, kvh, group, heads int, invSqrt float32) {
	qi := pr / group
	h := kvh*group + pr%group
	mass := masses[qi*heads+h]
	srow := sc.scores.Row(pr)
	for j := range mass {
		mass[j] = srow[j] * invSqrt
	}
	mathx.ExpNormalize(mass, mass)
}

// growMirror grows m to rows x cols preserving existing row contents.
func growMirror(m *tensor.Matrix, rows, cols int) {
	need := rows * cols
	if cap(m.Data) < need {
		m.Data = append(m.Data[:cap(m.Data)], make([]float32, need-cap(m.Data))...)
	}
	m.Data = m.Data[:need]
	m.Rows, m.Cols = rows, cols
}

// growInts returns a length-n int buffer, reusing buf's storage when it is
// large enough.
//
//vrex:noalloc
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// sortIntsCutoff is where insertion sort's quadratic cost overtakes the
// stdlib pdqsort on nearly-sorted selection lists.
const sortIntsCutoff = 48

// sortInts sorts ascending: insertion sort for short, mostly-ordered
// selections (the cluster table is in creation order), stdlib sort beyond
// the cutoff where quadratic cost would bite.
//
//vrex:noalloc
func sortInts(xs []int) {
	if len(xs) > sortIntsCutoff {
		slices.Sort(xs)
		return
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// recordStats folds one selection into the ratio statistics. Per-head unions
// are deduplicated at cluster granularity with epoch-stamped marks: clusters
// partition tokens, so a head's unique-token count is the sum of past counts
// over its distinct selected clusters.
func (r *ReSV) recordStats(layer int, stage model.Stage, sel wicsum.MatrixSelection, base, selectedTokens, nCands int) {
	ss := r.stats.stage(stage)
	ss.SelectedTokens += int64(selectedTokens)
	ss.CandidateTokens += int64(base)
	ss.Rows += int64(len(sel.Rows))
	ss.ExaminedFraction += sel.ExaminedFraction
	ss.Calls++

	r.stats.PerLayer[layer].Selected += int64(selectedTokens)
	r.stats.PerLayer[layer].Candidate += int64(base)

	sc := &r.layers[layer].scratch
	table := r.layers[layer].clusterer.Table
	heads := r.modelCfg.Heads
	if cap(sc.headMark) < heads*nCands {
		sc.headMark = make([]uint64, heads*nCands)
	}
	mark := sc.headMark[:heads*nCands]
	sc.headEpoch++
	for rowIdx := range sel.Rows {
		h := rowIdx % heads
		markRow := mark[h*nCands : (h+1)*nCands]
		for _, ci := range sel.Rows[rowIdx].Selected {
			if markRow[ci] != sc.headEpoch {
				markRow[ci] = sc.headEpoch
				r.stats.PerHead[h].Selected += int64(table.PastCount(ci))
			}
		}
	}
	for h := 0; h < heads; h++ {
		r.stats.PerHead[h].Candidate += int64(base)
	}
}

// Reset clears all per-session state (HC tables, layouts, statistics,
// transfer logs) so the retriever can serve a fresh session, reusing the
// existing layer state and scratch arenas. The hyperplanes are redrawn from
// the original seed, so a reset instance behaves exactly like a newly
// constructed one.
func (r *ReSV) Reset() {
	r.rng = mathx.NewRNG(r.cfg.Seed)
	r.selector.Ratio = r.cfg.ThWics
	for _, ls := range r.layers {
		ls.clusterer.Reset(r.rng.Split())
		ls.layout.Reset()
		ls.hier = nil
	}
	r.stats = NewStats(r.modelCfg.Layers, r.modelCfg.Heads)
}
