package scenarios

import (
	"testing"

	"vrex/internal/scenario"
	"vrex/internal/serve"
)

// TestPressureForcesDegradation pins the committed pressure scenario's
// purpose: its flash crowd must actually drive the degradation plane (budget
// steps fire) rather than merely declaring a degrade line.
func TestPressureForcesDegradation(t *testing.T) {
	src, err := Source("pressure.vrex")
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.Parse("pressure.vrex", src)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		cfg.Duration = 24 // past the flash window at t=15
	}
	res := serve.Run(cfg)
	if res.Aggregate.Degradations == 0 {
		t.Fatal("pressure scenario never engaged the degradation plane")
	}
	if res.Aggregate.MeanBudget <= 0 || res.Aggregate.MeanBudget >= 1 {
		t.Fatalf("MeanBudget = %v, want in (0, 1)", res.Aggregate.MeanBudget)
	}
}
