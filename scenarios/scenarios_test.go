package scenarios

import (
	"reflect"
	"testing"

	"vrex/internal/scenario"
)

// TestSuiteLint is the in-tree form of `make scenario-lint`: every committed
// file parses, validates, compiles to a runnable config, and round-trips
// through the canonical Marshal form.
func TestSuiteLint(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("committed suite has %d scenarios, want >= 5", len(names))
	}
	for _, name := range names {
		src, err := Source(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := scenario.Parse(name, src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Config(); err != nil {
			t.Fatalf("%s: does not compile: %v", name, err)
		}
		if s.IsCluster() {
			if _, err := s.ClusterConfig(); err != nil {
				t.Fatalf("%s: cluster config does not compile: %v", name, err)
			}
		}
		s2, err := scenario.Parse(name+" (marshal)", s.Marshal())
		if err != nil {
			t.Fatalf("%s: canonical form rejected: %v", name, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("%s: marshal round trip changed the scenario", name)
		}
	}
	if _, err := Source("missing.vrex"); err == nil {
		t.Fatal("unknown name must error")
	}
}

// TestSuiteCoversShapes pins the suite's reason to exist: each load shape
// the scenario layer supports has a committed exemplar.
func TestSuiteCoversShapes(t *testing.T) {
	arrivals := map[string]bool{}
	lifetimes := map[string]bool{}
	bursts := false
	degrades := false
	for _, name := range Names() {
		src, _ := Source(name)
		s, err := scenario.Parse(name, src)
		if err != nil {
			t.Fatal(err)
		}
		arrivals[s.Arrival.Kind] = true
		lifetimes[s.Lifetime.Kind] = true
		degrades = degrades || s.Degrade != ""
		for _, c := range s.Classes {
			bursts = bursts || c.Burst != nil
		}
	}
	for _, kind := range []string{"poisson", "diurnal", "flash", "trace"} {
		if !arrivals[kind] {
			t.Errorf("suite lacks an %q arrival scenario", kind)
		}
	}
	for _, kind := range []string{"exp", "pareto", "lognormal"} {
		if !lifetimes[kind] {
			t.Errorf("suite lacks a %q lifetime scenario", kind)
		}
	}
	if !bursts {
		t.Error("suite lacks a correlated class burst scenario")
	}
	if !degrades {
		t.Error("suite lacks a degradation-plane scenario")
	}
}

// TestSuiteCoversCluster pins that the committed suite exercises the cluster
// plane: at least one scenario declares nodes and an injected fault.
func TestSuiteCoversCluster(t *testing.T) {
	clustered, faulted := false, false
	for _, name := range Names() {
		src, _ := Source(name)
		s, err := scenario.Parse(name, src)
		if err != nil {
			t.Fatal(err)
		}
		clustered = clustered || s.IsCluster()
		faulted = faulted || len(s.Faults) > 0
	}
	if !clustered {
		t.Error("suite lacks a cluster scenario")
	}
	if !faulted {
		t.Error("suite lacks a node-fault scenario")
	}
}
