// Package scenarios embeds the committed .vrex workload suite: one file per
// adversarial load shape the serving planes must hold up under (diurnal rate
// cycles, flash crowds, heavy-tailed lifetimes, correlated class bursts, and
// a recorded trace replay). The suite is executable documentation of the
// scenario format and a regression fixture: the `scenarios` experiment runs
// every file as one golden-pinned table, and `make scenario-lint` holds each
// file to the canonical Marshal form.
package scenarios

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

//go:embed *.vrex
var files embed.FS

// Names returns the committed scenario file names, sorted.
func Names() []string {
	ents, err := files.ReadDir(".")
	if err != nil {
		panic(fmt.Sprintf("scenarios: embedded suite unreadable: %v", err))
	}
	var names []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".vrex") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// Source returns the raw bytes of one committed scenario file.
func Source(name string) ([]byte, error) {
	b, err := files.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("scenarios: %q not in the committed suite (have: %s)", name, strings.Join(Names(), ", "))
	}
	return b, nil
}
