// Command vrex-sim runs the standalone hardware simulator — either a
// single-device workload-point study or, in serving mode, a multi-device
// serving simulation over a heterogeneous stream mix.
//
// Point mode (default):
//
//	vrex-sim -device vrex8 -policy resv -kv 40000 -batch 1 -tokens 10
//	vrex-sim -device agx -policy flexgen -kv 20000 -tpot
//	vrex-sim -policy 'rekv(frame=0.58,text=0.31)' -kv 40000
//	vrex-sim -kv 10000,20000,40000,80000 -parallel 4   # sweep, ordered output
//
// Serving mode (enabled by -scenario, or by any of -mix, -devices,
// -balancer, -streams, -duration, -drop, -churn-arrivals, -churn-life,
// -seed, -kv-capacity, -spill, -page-tokens, -scheduler, -batch-max,
// -slo-ms, -degrade, or the cluster flags below):
//
//	vrex-sim -policy 'rekv(frame=0.58,text=0.31)' -devices 4 \
//	    -balancer least-loaded -mix '2fps:0.7,4fps:0.3'
//	vrex-sim -devices 2 -mix 2fps -streams 8 -churn-arrivals 0.5 -churn-life 30
//	vrex-sim -mix longctx -streams 10 -scheduler edf -batch-max 8 -slo-ms 600
//	vrex-sim -scenario scenarios/flash-crowd.vrex
//	vrex-sim -scenario-lint scenarios
//
// Cluster mode (enabled by -nodes, which replaces -devices): the fleet
// becomes a geo-distributed cluster of nodes (internal/cluster), each node a
// fleet of identical devices, with a global session router, optional
// autoscaler, node fault injection and live KV session migration priced over
// the LAN / WAN link models:
//
//	vrex-sim -nodes 'vrex8:2@us,vrex8:2@eu' -router least-loaded \
//	    -churn-arrivals 2 -churn-life 10
//	vrex-sim -nodes 'vrex48:4,vrex48:4' -scheduler edf \
//	    -fault 'drain(node=1,at=8,recover=14)' -rebalance-moves 4
//	vrex-sim -nodes 'vrex8:2,vrex8:2,vrex8:2' -autoscale 'queue(hi=0.05,lo=0.01)' \
//	    -initial-nodes 1 -churn-arrivals 4 -churn-life 8
//
// The serving flags are sugar over the declarative scenario layer
// (internal/scenario): they synthesize an in-memory .vrex scenario that is
// then compiled into the engine configuration, so a flag-built run and a
// file-built run go through the same code path. -scenario-dump prints the
// synthesized (or loaded) scenario in canonical .vrex form — feed it back
// via -scenario and the run is identical. Scenario files additionally
// describe time-varying load the flags cannot: diurnal rate cycles, flash
// crowds, Pareto/lognormal lifetimes, correlated per-class bursts, and
// trace replay (see scenarios/ for the committed suite). -record-trace
// writes the run's arrival pattern back out as a replayable trace scenario,
// and -scenario-lint checks a file or directory against the format.
//
// -kv-capacity enables the KV memory-pressure plane (internal/kvpool): each
// device gets a paged KV budget of that many gigabytes ("auto" derives the
// budget from the device spec, 0 disables the plane), -page-tokens sets the
// page size and -spill the spill/eviction policy ("none", or
// "spill(evict=lru,pages=16)" with evict drawn from the kvpool eviction
// registry).
//
// -scheduler enables the continuous-batching scheduler plane: ready frames
// from co-resident sessions coalesce into one hardware step (up to
// -batch-max) under the named policy — fifo, edf (earliest deadline first)
// or priority (classes rank by their position in -mix). -slo-ms sets the
// default per-frame deadline backing the edf ordering and the SLO
// attainment / goodput / queue-wait metrics; "none" keeps the serial
// batch-1 timeline.
//
// -degrade arms the degradation plane (internal/degrade): the named
// controller — static, pressure, deadline or hybrid — watches each
// session's KV free-page headroom and deadline slack and sheds its ReSV
// retrieval budget in bounded steps when the device is pressured, restoring
// with hysteresis once pressure clears. Degraded steps run cheaper on the
// hardware plane and are charged against the accuracy proxy, reported per
// class alongside the SLO metrics.
//
// The observability flags attach the telemetry plane (internal/telemetry) to
// any serving or cluster run without touching the simulation itself:
// -trace-out writes the run as Chrome trace-event JSON — load it in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing to see per-device lanes of
// batches, paging stalls and migration legs over per-session lifecycle lanes;
// -metrics-out writes event counters, fixed-bucket latency histograms and
// stall/gauge series in Prometheus text exposition format; -profile prints a
// simulated-time profile attributing every charged device-second to a phase
// (attention, linear, vision, prediction, retrieval fetch, KV paging,
// migration). All three are deterministic: byte-identical output for any
// -parallel value.
//
// Policies come from the hwsim registry and accept parameter overrides in
// the spec string; -list-policies prints every registered policy, balancer,
// scheduler, stream class, and spill/eviction policy name. -kv accepts a
// comma-separated list; the points are simulated across -parallel workers
// (default GOMAXPROCS, 1 = sequential) and printed in argument order, so the
// output is identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"vrex/internal/cluster"
	"vrex/internal/degrade"
	"vrex/internal/hwsim"
	"vrex/internal/kvpool"
	"vrex/internal/parallel"
	"vrex/internal/report"
	"vrex/internal/scenario"
	"vrex/internal/serve"
	"vrex/internal/telemetry"
)

// parseKVList parses the -kv flag: one length or a comma-separated sweep.
func parseKVList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad KV length %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// renderPoint simulates one workload point and renders its report.
func renderPoint(dev hwsim.DeviceSpec, pol hwsim.PolicyModel, kv, batch, tokens int, tpot bool) string {
	sim := hwsim.NewSim(dev, hwsim.Llama3_8B(), pol)
	var b hwsim.Breakdown
	if tpot {
		b = sim.TPOT(kv, batch)
	} else {
		b = sim.FrameLatency(tokens, kv, batch)
	}
	if b.OOM {
		return fmt.Sprintf("%s + %s @ kv=%d batch=%d: OUT OF MEMORY\n", dev.Name, pol.Name, kv, batch)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s + %s @ kv=%d batch=%d\n", dev.Name, pol.Name, kv, batch)
	fmt.Fprintf(&sb, "  total latency    : %8.2f ms (%.2f FPS)\n", b.Total*1000, b.FPS())
	fmt.Fprintf(&sb, "  vision + host    : %8.2f ms\n", b.VisionTime*1000)
	fmt.Fprintf(&sb, "  linear (QKVO+FFN): %8.2f ms\n", b.LinearTime*1000)
	fmt.Fprintf(&sb, "  attention        : %8.2f ms\n", b.AttnTime*1000)
	fmt.Fprintf(&sb, "  KV prediction    : %8.2f ms exposed (%.2f ms busy)\n", b.PredExposed*1000, b.PredRaw*1000)
	fmt.Fprintf(&sb, "  KV fetch         : %8.2f ms exposed (%.2f ms busy, %.1f MB)\n",
		b.FetchExposed*1000, b.FetchRaw*1000, b.FetchBytes/1e6)
	fmt.Fprintf(&sb, "  DRE busy         : %8.3f ms\n", b.DRETime*1000)
	fmt.Fprintf(&sb, "  energy           : %8.2f J (%.1f GOPS/W)\n", b.EnergyJ, b.GOPSPerWatt())
	return sb.String()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func listPolicies() {
	fmt.Println("policies (hwsim registry; parameters: frame, text, segment, cluster, reuse, quantbits):")
	for _, n := range hwsim.PolicyModelNames() {
		fmt.Printf("  %s\n", n)
	}
	fmt.Println("balancers (-balancer):")
	for _, n := range serve.BalancerNames() {
		fmt.Printf("  %s\n", n)
	}
	fmt.Println("schedulers (-scheduler; 'none' disables the scheduler plane):")
	for _, n := range serve.SchedulerNames() {
		fmt.Printf("  %s\n", n)
	}
	fmt.Println("degraders (-degrade; e.g. 'pressure(lo=0.1,hi=0.3)'; 'none' disables the degradation plane):")
	fmt.Println("  none")
	for _, n := range degrade.Names() {
		fmt.Printf("  %s\n", n)
	}
	fmt.Println("stream classes (-mix class:weight,...):")
	for _, n := range serve.ClassNames() {
		fmt.Printf("  %s\n", n)
	}
	fmt.Println("cluster routers (-router; needs -nodes):")
	for _, n := range cluster.RouterNames() {
		fmt.Printf("  %s\n", n)
	}
	fmt.Println("cluster autoscalers (-autoscale; e.g. 'queue(hi=0.05,lo=0.01)'; 'none' disables):")
	for _, n := range cluster.AutoscalerNames() {
		fmt.Printf("  %s\n", n)
	}
	fmt.Println("spill policies (-spill; e.g. 'spill(evict=lru,pages=16)'):")
	for _, n := range kvpool.SpillNames() {
		fmt.Printf("  %s\n", n)
	}
	fmt.Println("eviction policies (kvpool registry; -spill evict= parameter):")
	for _, n := range kvpool.EvictionNames() {
		fmt.Printf("  %s\n", n)
	}
}

// lintScenarios parses, validates, compiles and round-trips one .vrex file
// or every .vrex file in a directory; any failure exits non-zero.
func lintScenarios(path string) {
	info, err := os.Stat(path)
	if err != nil {
		fail("%v", err)
	}
	files := []string{path}
	if info.IsDir() {
		files, err = filepath.Glob(filepath.Join(path, "*.vrex"))
		if err != nil || len(files) == 0 {
			fail("no .vrex files in %s", path)
		}
		sort.Strings(files)
	}
	ok := true
	complain := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		ok = false
	}
	for _, f := range files {
		s, err := scenario.ParseFile(f)
		if err != nil {
			complain(err)
			continue
		}
		if s.IsCluster() {
			if _, err := s.ClusterConfig(); err != nil {
				complain(fmt.Errorf("%s: does not compile: %v", f, err))
				continue
			}
		} else if _, err := s.Config(); err != nil {
			complain(fmt.Errorf("%s: does not compile: %v", f, err))
			continue
		}
		s2, err := scenario.Parse(f+" (canonical form)", s.Marshal())
		if err != nil {
			complain(fmt.Errorf("%s: canonical form rejected: %v", f, err))
			continue
		}
		if !reflect.DeepEqual(s, s2) {
			complain(fmt.Errorf("%s: canonical round trip changed the scenario", f))
			continue
		}
		kind := fmt.Sprintf("%d classes, %d trace events", len(s.Classes), len(s.Trace))
		if s.IsCluster() {
			kind += fmt.Sprintf(", cluster %s, %d faults", s.Nodes, len(s.Faults))
		}
		fmt.Printf("ok %s (scenario %s: arrivals %s, lifetime %s, %s)\n",
			f, s.Name, s.Arrival.Kind, s.Lifetime.Kind, kind)
	}
	if !ok {
		os.Exit(1)
	}
}

func verdict(res serve.Result) string {
	if !res.RealTime {
		return "NOT real-time"
	}
	return "real-time"
}

// printFleetSummary renders the parts single-fleet and cluster serving runs
// share: the KV pool and scheduler summary lines and the per-class table.
func printFleetSummary(cfg serve.Config, res serve.Result) {
	sched := cfg.Scheduler.Policy
	if mem := res.Memory; mem.CapacityPages > 0 {
		fmt.Printf("kv pool: %d pages x %d tokens per device, spill %s | pages in/out %d/%d (%.1f/%.1f ms) | queued %d, rejected %d\n",
			mem.CapacityPages, mem.PageTokens, cfg.KV.Spill.Name(),
			mem.PagesIn, mem.PagesOut, 1000*mem.PageInTime, 1000*mem.PageOutTime,
			mem.SessionsQueued, mem.SessionsRejected)
	}
	if sched != nil {
		bm := cfg.Scheduler.BatchMax
		if bm <= 0 {
			bm = serve.DefaultBatchMax
		}
		steps := 0
		for _, dm := range res.PerDevice {
			steps += dm.Batches
		}
		fmt.Printf("scheduler: %s, batch cap %d | %d hardware steps | SLO attainment %.1f%%, goodput %.2f fps, deadline misses %d\n",
			sched.Name(), bm, steps, 100*res.Aggregate.SLOAttained,
			res.Aggregate.Goodput, res.Aggregate.DeadlineMisses)
	}
	deg := cfg.Degrade.Policy
	if deg != nil {
		fmt.Printf("degrade: %s | %d degradations, %d restorations | mean budget %.3f, accuracy proxy %.3f\n",
			deg.Name(), res.Aggregate.Degradations, res.Aggregate.Restorations,
			res.Aggregate.MeanBudget, res.Aggregate.AccuracyProxy)
	}
	fmt.Println()

	classHeaders := []string{"class", "sessions", "arrived", "served", "dropped", "queries", "fps_per_stream", "p50_ms", "p99_ms", "realtime_sessions"}
	if sched != nil {
		classHeaders = append(classHeaders, "slo_pct", "goodput_fps", "queue_p99_ms")
	}
	if deg != nil {
		classHeaders = append(classHeaders, "mean_budget", "acc_proxy", "degradations", "restorations")
	}
	classTab := report.NewTable("serving: per-class metrics", classHeaders...)
	for _, cm := range append(res.PerClass, res.Aggregate) {
		row := []any{cm.Class, cm.Sessions, cm.FramesArrived, cm.FramesServed,
			cm.FramesDropped, cm.QueriesServed, cm.MeanFPS, 1000 * cm.P50, 1000 * cm.P99, cm.RealTimeSessions}
		if sched != nil {
			row = append(row, 100*cm.SLOAttained, cm.Goodput, 1000*cm.QueueP99)
		}
		if deg != nil {
			row = append(row, cm.MeanBudget, cm.AccuracyProxy, cm.Degradations, cm.Restorations)
		}
		classTab.AddRow(row...)
	}
	classTab.Render(os.Stdout)
	fmt.Println()
}

// runCluster executes a cluster scenario and renders the topology header,
// migration traffic, the fleet-wide per-class metrics, per-node metrics and —
// when faults or an autoscaler shaped the run — the SLO attainment windows.
func runCluster(sc *scenario.Scenario, cfg cluster.Config) {
	res := cluster.Run(cfg)
	scaler := "none"
	if cfg.Autoscaler != nil {
		scaler = cfg.Autoscaler.Name()
	}
	fmt.Printf("cluster %s | router %s, autoscaler %s, node balancer %s | %d sessions over %gs | %s, cluster utilization %.0f%%\n",
		sc.Nodes, cfg.Router.Name(), scaler, sc.Balancer,
		len(res.Serve.PerStream), sc.Duration, verdict(res.Serve), 100*res.Serve.Utilization)
	mig := res.Serve.Migrations
	fmt.Printf("migrations: %d live, %d lossy | %d KV tokens moved | %.1f ms on device timelines | %d fault(s) injected\n",
		mig.Live, mig.Lossy, mig.Tokens, 1000*mig.Time, len(cfg.Faults))
	printFleetSummary(cfg.Base, res.Serve)

	nodeTab := report.NewTable("cluster: per-node metrics",
		"node", "region", "devices", "sessions", "frames", "queries", "util_pct",
		"mig_in", "mig_out", "mig_ms")
	for _, nm := range res.PerNode {
		region := nm.Region
		if region == "" {
			region = "-"
		}
		nodeTab.AddRow(nm.Name, region, nm.Devices, nm.Sessions, nm.FramesServed,
			nm.QueriesServed, 100*nm.Utilization, nm.MigrationsIn, nm.MigrationsOut,
			1000*nm.MigrationTime)
	}
	nodeTab.Render(os.Stdout)

	if len(cfg.Faults) > 0 || cfg.Autoscaler != nil {
		winTab := report.NewTable("cluster: SLO attainment windows",
			"t_start", "t_end", "served", "missed", "dropped", "attained_pct")
		for _, w := range res.Windows {
			winTab.AddRow(w.Start, w.End, w.FramesServed, w.DeadlineMisses,
				w.FramesDropped, 100*w.Attained)
		}
		fmt.Println()
		winTab.Render(os.Stdout)
	}
}

// telemetryOut bundles the -trace-out / -metrics-out / -profile wiring: a
// collector attached to the run's config, and the exports emitted afterwards.
// The zero configuration (no flag set) attaches nothing, keeping the engine's
// telemetry-disabled fast path.
type telemetryOut struct {
	traceOut, metricsOut string
	profile              bool
	col                  *telemetry.Collector
	prof                 *serve.PhaseProfile
}

func newTelemetryOut(traceOut, metricsOut string, profile bool) *telemetryOut {
	return &telemetryOut{traceOut: traceOut, metricsOut: metricsOut, profile: profile}
}

func (t *telemetryOut) enabled() bool {
	return t.traceOut != "" || t.metricsOut != "" || t.profile
}

// attach wires a collector and profile into the serving config (a no-op when
// no telemetry flag was set).
func (t *telemetryOut) attach(cfg *serve.Config) {
	if !t.enabled() {
		return
	}
	t.col = telemetry.NewCollector()
	t.prof = t.col.Attach(cfg)
}

// emit writes the requested exports after the run.
func (t *telemetryOut) emit(duration float64) {
	if t.col == nil {
		return
	}
	if t.traceOut != "" {
		f, err := os.Create(t.traceOut)
		if err != nil {
			fail("-trace-out: %v", err)
		}
		if err := t.col.WriteTrace(f); err != nil {
			fail("-trace-out: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("-trace-out: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote Chrome trace for %d events to %s (load in Perfetto or chrome://tracing)\n",
			len(t.col.Events()), t.traceOut)
	}
	if t.metricsOut != "" {
		f, err := os.Create(t.metricsOut)
		if err != nil {
			fail("-metrics-out: %v", err)
		}
		t.col.Metrics(1, duration).WritePrometheus(f)
		if err := f.Close(); err != nil {
			fail("-metrics-out: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote Prometheus metrics to %s\n", t.metricsOut)
	}
	if t.profile {
		fmt.Println()
		telemetry.AttributionTable(t.prof).Render(os.Stdout)
	}
}

func main() {
	device := flag.String("device", "vrex8", "agx | a100 | vrex8 | vrex48")
	policy := flag.String("policy", "resv", "policy spec, e.g. resv or 'rekv(frame=0.58,text=0.31)' (see -list-policies)")
	kv := flag.String("kv", "40000", "KV cache sequence length, or comma-separated sweep (point mode)")
	batch := flag.Int("batch", 1, "batch size (point mode)")
	tokens := flag.Int("tokens", 10, "new tokens per frame (point mode)")
	tpot := flag.Bool("tpot", false, "simulate one generated token instead of a frame (point mode)")
	par := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count (1 = sequential)")
	mix := flag.String("mix", "2fps", "serving: weighted stream mix, e.g. '2fps:0.7,4fps:0.3'")
	devices := flag.Int("devices", 1, "serving: fleet size")
	balancer := flag.String("balancer", "round-robin", "serving: session balancer (see -list-policies)")
	streams := flag.Int("streams", 8, "serving: sessions active at t=0")
	duration := flag.Float64("duration", 20, "serving: simulated seconds")
	drop := flag.Float64("drop", 4, "serving: drop frames queued longer than this many frame intervals (0 disables)")
	churnArrivals := flag.Float64("churn-arrivals", 0, "serving: mean session arrivals per second (0 disables churn)")
	churnLife := flag.Float64("churn-life", 0, "serving: mean session lifetime seconds (0 = whole run)")
	seed := flag.Uint64("seed", 1, "serving: arrival jitter seed")
	kvCapacity := flag.String("kv-capacity", "0", "serving: per-device KV budget in GB, or 'auto' (0 disables the memory-pressure plane)")
	spill := flag.String("spill", "none", "serving: spill policy, e.g. 'spill(evict=lru,pages=16)' (see -list-policies)")
	pageTokens := flag.Int("page-tokens", 0, "serving: KV page size in tokens (0 = default 256)")
	scheduler := flag.String("scheduler", "none", "serving: continuous-batching scheduler (fifo | edf | priority; 'none' keeps the serial batch-1 timeline)")
	batchMax := flag.Int("batch-max", 0, "serving: max frames coalesced per hardware step (0 = default 8; needs -scheduler)")
	sloMS := flag.Float64("slo-ms", 0, "serving: default per-frame deadline in milliseconds (0 = one frame interval; needs -scheduler)")
	degradeSpec := flag.String("degrade", "none", "serving: degradation controller, e.g. 'pressure(lo=0.1,hi=0.3)' or 'hybrid' ('none' disables; see -list-policies)")
	nodes := flag.String("nodes", "", "cluster: node list 'spec[:devices][@region],...' e.g. 'vrex8:2@us,vrex48:4@eu' (enables the cluster plane; replaces -devices)")
	router := flag.String("router", "", "cluster: global session router (empty = round-robin; see -list-policies; needs -nodes)")
	autoscale := flag.String("autoscale", "", "cluster: node autoscaler, e.g. 'queue(hi=0.05,lo=0.01)' or 'slo(target=0.95)' ('none'/empty disables; needs -nodes)")
	initialNodes := flag.Int("initial-nodes", 0, "cluster: nodes in service at t=0 (0 = all; the rest start drained, available for scale-out; needs -autoscale)")
	rebalanceMoves := flag.Int("rebalance-moves", 0, "cluster: max live session migrations per controller tick (0 disables rebalancing; needs -nodes)")
	rebalanceSlack := flag.Float64("rebalance-slack", 0, "cluster: sessions-per-device imbalance tolerated before rebalancing (needs -rebalance-moves)")
	fault := flag.String("fault", "", "cluster: fault list 'drain(node=1,at=8,recover=14); fail(node=0,at=10)' (needs -nodes)")
	scenarioFile := flag.String("scenario", "", "serving: run a .vrex scenario file (replaces the serving flags)")
	scenarioDump := flag.Bool("scenario-dump", false, "print the scenario (loaded, or synthesized from the serving flags) in canonical .vrex form, then exit")
	scenarioLint := flag.String("scenario-lint", "", "lint a .vrex file or a directory of them, then exit")
	recordTrace := flag.String("record-trace", "", "serving: after the run, write its arrival pattern as a replayable trace scenario to this .vrex file")
	traceOut := flag.String("trace-out", "", "serving: write the run as Chrome trace-event JSON to this file (load in Perfetto / chrome://tracing)")
	metricsOut := flag.String("metrics-out", "", "serving: write run metrics in Prometheus text exposition format to this file")
	profileRun := flag.Bool("profile", false, "serving: print the simulated-time phase attribution profile after the run")
	list := flag.Bool("list-policies", false, "list registered policies, balancers and stream classes, then exit")
	flag.Parse()

	if *list {
		listPolicies()
		return
	}
	if args := flag.Args(); len(args) > 0 {
		fail("unexpected arguments %q: vrex-sim takes only flags", args)
	}
	if *scenarioLint != "" {
		lintScenarios(*scenarioLint)
		return
	}

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	servingFlags := []string{"mix", "devices", "balancer", "streams", "duration", "drop",
		"churn-arrivals", "churn-life", "seed", "kv-capacity", "spill", "page-tokens",
		"scheduler", "batch-max", "slo-ms", "degrade",
		"nodes", "router", "autoscale", "initial-nodes", "rebalance-moves", "rebalance-slack", "fault"}
	pointFlags := []string{"kv", "batch", "tokens", "tpot"}
	// The telemetry flags, like -record-trace, imply serving mode but still
	// compose with -scenario (they attach observers, they don't shape the run).
	serving := *scenarioFile != "" || *recordTrace != "" ||
		*traceOut != "" || *metricsOut != "" || *profileRun
	for _, f := range servingFlags {
		if set[f] {
			serving = true
		}
	}
	if serving || *scenarioDump {
		for _, f := range pointFlags {
			if set[f] {
				fail("-%s applies to point mode, but serving flags (-mix/-devices/-scenario/...) were given;\ndrop -%s, or remove the serving flags to run a workload point", f, f)
			}
		}
	}

	// Build the scenario: from the file, or synthesized from the flags (the
	// flags are sugar — both routes compile through scenario.Config, so
	// -scenario-dump output fed back via -scenario reproduces the flag run).
	var sc *scenario.Scenario
	if *scenarioFile != "" {
		for _, f := range servingFlags {
			if set[f] {
				fail("-scenario replaces the serving flags, but -%s was also given;\nedit the scenario file (or dump the flag equivalent with -scenario-dump) instead", f)
			}
		}
		var err error
		sc, err = scenario.ParseFile(*scenarioFile)
		if err != nil {
			fail("%v", err)
		}
	} else {
		if *churnArrivals < 0 || *churnLife < 0 {
			fail("-churn-arrivals and -churn-life must be non-negative")
		}
		classes, err := serve.ParseMix(*mix)
		if err != nil {
			fail("%v\nrun 'vrex-sim -list-policies' for stream class names", err)
		}
		sc = scenario.Default()
		sc.Duration = *duration
		sc.Seed = *seed
		sc.Streams = *streams
		sc.Devices = *devices
		sc.Device = strings.ToLower(*device)
		sc.Policy = *policy
		sc.Balancer = *balancer
		sc.Scheduler = *scheduler
		sc.BatchMax = *batchMax
		sc.SLOms = *sloMS
		// Mirror the parser's canonicalization: "none" is the zero value,
		// so -scenario-dump output stays a Marshal fixed point.
		sc.Degrade = strings.ToLower(strings.TrimSpace(*degradeSpec))
		if sc.Degrade == "none" {
			sc.Degrade = ""
		}
		sc.Drop = *drop
		sc.KVCapacity = strings.ToLower(strings.TrimSpace(*kvCapacity))
		sc.Spill = *spill
		sc.PageTokens = *pageTokens
		if *nodes != "" {
			ns, err := cluster.ParseNodes(*nodes)
			if err != nil {
				fail("%v\n-nodes takes 'spec[:devices][@region],...', e.g. 'vrex8:2@us,vrex48:4@eu'", err)
			}
			sc.Nodes = cluster.FormatNodes(ns)
		}
		sc.Router = strings.ToLower(strings.TrimSpace(*router))
		sc.Autoscale = strings.ToLower(strings.TrimSpace(*autoscale))
		sc.InitialNodes = *initialNodes
		sc.RebalanceMoves = *rebalanceMoves
		sc.RebalanceSlack = *rebalanceSlack
		if *fault != "" {
			sc.Faults, err = cluster.ParseFaults(*fault)
			if err != nil {
				fail("%v\n-fault takes 'drain(node=,at=[,recover=])' or 'fail(...)', ';'-separated", err)
			}
		}
		if *churnArrivals > 0 {
			sc.Arrival = scenario.ArrivalSpec{Kind: "poisson", Rate: *churnArrivals}
		}
		if *churnLife > 0 {
			sc.Lifetime = scenario.LifetimeSpec{Kind: "exp", Mean: *churnLife}
		}
		// The priority scheduler ranks classes by their position in the
		// -mix spec (ClassSpec priority -1 = mix order): list the most
		// latency-critical class first.
		sc.Classes = make([]scenario.ClassSpec, len(classes))
		for i, c := range classes {
			sc.Classes[i] = scenario.ClassSpec{Name: c.Name, Weight: c.Weight, Priority: -1}
		}
	}

	if *scenarioDump {
		os.Stdout.Write(sc.Marshal())
		return
	}

	if !serving {
		dev, ok := hwsim.DeviceByName(*device)
		if !ok {
			fail("unknown device %q (known: %s)", *device, strings.Join(hwsim.DeviceNames(), ", "))
		}
		pol, err := hwsim.ParsePolicy(*policy)
		if err != nil {
			fail("%v\nrun 'vrex-sim -list-policies' for registered policies", err)
		}
		kvs, err := parseKVList(*kv)
		if err != nil {
			fail("%v\n-kv takes one KV length or a comma-separated sweep, e.g. -kv 10000,20000", err)
		}
		reports := parallel.Map(*par, len(kvs), func(i int) string {
			return renderPoint(dev, pol, kvs[i], *batch, *tokens, *tpot)
		})
		for _, r := range reports {
			fmt.Print(r)
		}
		return
	}

	tele := newTelemetryOut(*traceOut, *metricsOut, *profileRun)

	if sc.IsCluster() {
		if *recordTrace != "" {
			fail("-record-trace is not supported for cluster scenarios")
		}
		ccfg, err := sc.ClusterConfig()
		if err != nil {
			fail("%v\nrun 'vrex-sim -list-policies' for registered router and autoscaler names", err)
		}
		ccfg.Base.Workers = *par
		tele.attach(&ccfg.Base)
		runCluster(sc, ccfg)
		tele.emit(sc.Duration)
		return
	}

	cfg, err := sc.Config()
	if err != nil {
		fail("%v\nrun 'vrex-sim -list-policies' for registered policy, balancer and class names", err)
	}
	cfg.Workers = *par
	var rec *scenario.Recorder
	if *recordTrace != "" {
		rec = scenario.NewRecorder()
		cfg.Observer = rec
	}
	tele.attach(&cfg)
	res := serve.Run(cfg)
	if rec != nil {
		replay := rec.Scenario(sc)
		if err := replay.Validate(); err != nil {
			fail("-record-trace: recorded scenario invalid: %v", err)
		}
		if err := os.WriteFile(*recordTrace, replay.Marshal(), 0o644); err != nil {
			fail("-record-trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "recorded %d sessions to %s (replay with -scenario)\n", len(replay.Trace), *recordTrace)
	}

	sched := cfg.Scheduler.Policy
	fmt.Printf("%s + %s | %d device(s), %s balancer | %d sessions over %gs | %s, fleet utilization %.0f%%\n",
		cfg.Dev.Name, cfg.Pol.Name, sc.Devices, cfg.Balancer.Name(), len(res.PerStream), sc.Duration, verdict(res), 100*res.Utilization)
	printFleetSummary(cfg, res)

	headers := []string{"device", "sessions", "frames", "queries", "util_pct", "peak_kv"}
	if sched != nil {
		headers = append(headers, "batches", "qwait_ms")
	}
	if res.Memory.CapacityPages > 0 {
		headers = append(headers, "pages_in", "pages_out", "pagein_ms", "pageout_ms", "queued", "rejected")
	}
	degOn := cfg.Degrade.Policy != nil
	if degOn {
		headers = append(headers, "degradations", "restorations")
	}
	devTab := report.NewTable("serving: per-device metrics", headers...)
	for d, dm := range res.PerDevice {
		row := []any{d, dm.Sessions, dm.FramesServed, dm.QueriesServed, 100 * dm.Utilization, dm.PeakResidentKV}
		if sched != nil {
			row = append(row, dm.Batches, 1000*dm.MeanQueueWait)
		}
		if res.Memory.CapacityPages > 0 {
			row = append(row, dm.PagesIn, dm.PagesOut, 1000*dm.PageInTime, 1000*dm.PageOutTime,
				dm.SessionsQueued, dm.SessionsRejected)
		}
		if degOn {
			row = append(row, dm.Degradations, dm.Restorations)
		}
		devTab.AddRow(row...)
	}
	devTab.Render(os.Stdout)
	tele.emit(sc.Duration)
}
