// Command vrex-sim runs the standalone hardware simulator for one
// device/policy/workload point and prints the latency breakdown, energy and
// throughput.
//
// Usage:
//
//	vrex-sim -device vrex8 -policy resv -kv 40000 -batch 1 -tokens 10
//	vrex-sim -device agx -policy flexgen -kv 20000 -tpot
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vrex/internal/hwsim"
)

func deviceByName(name string) (hwsim.DeviceSpec, bool) {
	switch strings.ToLower(name) {
	case "agx", "agxorin", "orin":
		return hwsim.AGXOrin(), true
	case "a100":
		return hwsim.A100(), true
	case "vrex8", "v-rex8":
		return hwsim.VRex8(), true
	case "vrex48", "v-rex48":
		return hwsim.VRex48(), true
	}
	return hwsim.DeviceSpec{}, false
}

func policyByName(name string) (hwsim.PolicyModel, bool) {
	switch strings.ToLower(name) {
	case "flexgen":
		return hwsim.FlexGenModel(), true
	case "infinigen":
		return hwsim.InfiniGenModel(), true
	case "infinigenp":
		return hwsim.InfiniGenPModel(), true
	case "rekv":
		return hwsim.ReKVModel(), true
	case "resv":
		return hwsim.ReSVModel(), true
	case "resv-gpu", "resvongpu":
		return hwsim.ReSVOnGPUModel(), true
	case "dense":
		return hwsim.DenseModel(), true
	case "oaken":
		return hwsim.OakenModel(), true
	}
	return hwsim.PolicyModel{}, false
}

func main() {
	device := flag.String("device", "vrex8", "agx | a100 | vrex8 | vrex48")
	policy := flag.String("policy", "resv", "flexgen | infinigen | infinigenp | rekv | resv | resv-gpu | dense | oaken")
	kv := flag.Int("kv", 40000, "KV cache sequence length")
	batch := flag.Int("batch", 1, "batch size")
	tokens := flag.Int("tokens", 10, "new tokens per frame")
	tpot := flag.Bool("tpot", false, "simulate one generated token instead of a frame")
	flag.Parse()

	dev, ok := deviceByName(*device)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown device %q\n", *device)
		os.Exit(1)
	}
	pol, ok := policyByName(*policy)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(1)
	}
	sim := hwsim.NewSim(dev, hwsim.Llama3_8B(), pol)
	var b hwsim.Breakdown
	if *tpot {
		b = sim.TPOT(*kv, *batch)
	} else {
		b = sim.FrameLatency(*tokens, *kv, *batch)
	}
	if b.OOM {
		fmt.Printf("%s + %s @ kv=%d batch=%d: OUT OF MEMORY\n", dev.Name, pol.Name, *kv, *batch)
		return
	}
	fmt.Printf("%s + %s @ kv=%d batch=%d\n", dev.Name, pol.Name, *kv, *batch)
	fmt.Printf("  total latency    : %8.2f ms (%.2f FPS)\n", b.Total*1000, b.FPS())
	fmt.Printf("  vision + host    : %8.2f ms\n", b.VisionTime*1000)
	fmt.Printf("  linear (QKVO+FFN): %8.2f ms\n", b.LinearTime*1000)
	fmt.Printf("  attention        : %8.2f ms\n", b.AttnTime*1000)
	fmt.Printf("  KV prediction    : %8.2f ms exposed (%.2f ms busy)\n", b.PredExposed*1000, b.PredRaw*1000)
	fmt.Printf("  KV fetch         : %8.2f ms exposed (%.2f ms busy, %.1f MB)\n",
		b.FetchExposed*1000, b.FetchRaw*1000, b.FetchBytes/1e6)
	fmt.Printf("  DRE busy         : %8.3f ms\n", b.DRETime*1000)
	fmt.Printf("  energy           : %8.2f J (%.1f GOPS/W)\n", b.EnergyJ, b.GOPSPerWatt())
}
