// Command vrex-sim runs the standalone hardware simulator for one or more
// device/policy/workload points and prints the latency breakdown, energy and
// throughput.
//
// Usage:
//
//	vrex-sim -device vrex8 -policy resv -kv 40000 -batch 1 -tokens 10
//	vrex-sim -device agx -policy flexgen -kv 20000 -tpot
//	vrex-sim -kv 10000,20000,40000,80000 -parallel 4   # sweep, ordered output
//
// -kv accepts a comma-separated list; the points are simulated across
// -parallel workers (default GOMAXPROCS, 1 = sequential) and printed in
// argument order, so the output is identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"vrex/internal/hwsim"
	"vrex/internal/parallel"
)

func deviceByName(name string) (hwsim.DeviceSpec, bool) {
	switch strings.ToLower(name) {
	case "agx", "agxorin", "orin":
		return hwsim.AGXOrin(), true
	case "a100":
		return hwsim.A100(), true
	case "vrex8", "v-rex8":
		return hwsim.VRex8(), true
	case "vrex48", "v-rex48":
		return hwsim.VRex48(), true
	}
	return hwsim.DeviceSpec{}, false
}

func policyByName(name string) (hwsim.PolicyModel, bool) {
	switch strings.ToLower(name) {
	case "flexgen":
		return hwsim.FlexGenModel(), true
	case "infinigen":
		return hwsim.InfiniGenModel(), true
	case "infinigenp":
		return hwsim.InfiniGenPModel(), true
	case "rekv":
		return hwsim.ReKVModel(), true
	case "resv":
		return hwsim.ReSVModel(), true
	case "resv-gpu", "resvongpu":
		return hwsim.ReSVOnGPUModel(), true
	case "dense":
		return hwsim.DenseModel(), true
	case "oaken":
		return hwsim.OakenModel(), true
	}
	return hwsim.PolicyModel{}, false
}

// parseKVList parses the -kv flag: one length or a comma-separated sweep.
func parseKVList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad KV length %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// renderPoint simulates one workload point and renders its report.
func renderPoint(dev hwsim.DeviceSpec, pol hwsim.PolicyModel, kv, batch, tokens int, tpot bool) string {
	sim := hwsim.NewSim(dev, hwsim.Llama3_8B(), pol)
	var b hwsim.Breakdown
	if tpot {
		b = sim.TPOT(kv, batch)
	} else {
		b = sim.FrameLatency(tokens, kv, batch)
	}
	if b.OOM {
		return fmt.Sprintf("%s + %s @ kv=%d batch=%d: OUT OF MEMORY\n", dev.Name, pol.Name, kv, batch)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s + %s @ kv=%d batch=%d\n", dev.Name, pol.Name, kv, batch)
	fmt.Fprintf(&sb, "  total latency    : %8.2f ms (%.2f FPS)\n", b.Total*1000, b.FPS())
	fmt.Fprintf(&sb, "  vision + host    : %8.2f ms\n", b.VisionTime*1000)
	fmt.Fprintf(&sb, "  linear (QKVO+FFN): %8.2f ms\n", b.LinearTime*1000)
	fmt.Fprintf(&sb, "  attention        : %8.2f ms\n", b.AttnTime*1000)
	fmt.Fprintf(&sb, "  KV prediction    : %8.2f ms exposed (%.2f ms busy)\n", b.PredExposed*1000, b.PredRaw*1000)
	fmt.Fprintf(&sb, "  KV fetch         : %8.2f ms exposed (%.2f ms busy, %.1f MB)\n",
		b.FetchExposed*1000, b.FetchRaw*1000, b.FetchBytes/1e6)
	fmt.Fprintf(&sb, "  DRE busy         : %8.3f ms\n", b.DRETime*1000)
	fmt.Fprintf(&sb, "  energy           : %8.2f J (%.1f GOPS/W)\n", b.EnergyJ, b.GOPSPerWatt())
	return sb.String()
}

func main() {
	device := flag.String("device", "vrex8", "agx | a100 | vrex8 | vrex48")
	policy := flag.String("policy", "resv", "flexgen | infinigen | infinigenp | rekv | resv | resv-gpu | dense | oaken")
	kv := flag.String("kv", "40000", "KV cache sequence length, or comma-separated sweep")
	batch := flag.Int("batch", 1, "batch size")
	tokens := flag.Int("tokens", 10, "new tokens per frame")
	tpot := flag.Bool("tpot", false, "simulate one generated token instead of a frame")
	par := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for KV sweeps (1 = sequential)")
	flag.Parse()

	dev, ok := deviceByName(*device)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown device %q\n", *device)
		os.Exit(1)
	}
	pol, ok := policyByName(*policy)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(1)
	}
	kvs, err := parseKVList(*kv)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reports := parallel.Map(*par, len(kvs), func(i int) string {
		return renderPoint(dev, pol, kvs[i], *batch, *tokens, *tpot)
	})
	for _, r := range reports {
		fmt.Print(r)
	}
}
