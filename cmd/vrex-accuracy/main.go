// Command vrex-accuracy runs the Table II accuracy/ratio evaluation on the
// functional plane: the planted-saliency QA proxy over COIN-like sessions,
// for any subset of the retrieval policies.
//
// Usage:
//
//	vrex-accuracy -sessions 10
//	vrex-accuracy -policy resv -task Next -sessions 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vrex/internal/accuracy"
	"vrex/internal/core"
	"vrex/internal/model"
	"vrex/internal/report"
	"vrex/internal/retrieval"
	"vrex/internal/workload"
)

func main() {
	sessions := flag.Int("sessions", 10, "sessions per task family")
	policy := flag.String("policy", "all", "all | dense | infinigen | infinigenp | rekv | resv | resv-nocluster")
	task := flag.String("task", "all", "all | Step | Next | Proc. | Proc.+ | Task")
	seed := flag.Uint64("seed", 7, "random seed")
	flag.Parse()

	mcfg := model.DefaultConfig()
	mcfg.Seed = *seed
	wcfg := workload.DefaultConfig()
	wcfg.Seed = *seed
	ev := accuracy.NewEvaluator(mcfg, wcfg, *sessions)

	factories := map[string]accuracy.PolicyFactory{
		"dense":      func() model.Retriever { return retrieval.NewDense() },
		"infinigen":  func() model.Retriever { return retrieval.NewInfiniGen(mcfg, 0.068) },
		"infinigenp": func() model.Retriever { return retrieval.NewInfiniGenP(mcfg, 0.5, 0.068) },
		"rekv": func() model.Retriever {
			return retrieval.NewReKV(mcfg, wcfg.Stream.TokensPerFrame, 0.584, 0.312)
		},
		"resv": func() model.Retriever { return core.New(mcfg, core.DefaultConfig()) },
		"resv-nocluster": func() model.Retriever {
			c := core.DefaultConfig()
			c.DisableClustering = true
			return core.New(mcfg, c)
		},
	}
	order := []string{"dense", "infinigen", "infinigenp", "rekv", "resv"}
	if *policy != "all" {
		name := strings.ToLower(*policy)
		if _, ok := factories[name]; !ok {
			fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
			os.Exit(1)
		}
		order = []string{name}
	}

	tasks := workload.Tasks()
	if *task != "all" {
		var sel []workload.Task
		for _, tk := range tasks {
			if strings.EqualFold(tk.String(), *task) {
				sel = append(sel, tk)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "unknown task %q\n", *task)
			os.Exit(1)
		}
		tasks = sel
	}

	t := report.NewTable("Accuracy and retrieval ratios (planted-saliency proxy)",
		"policy", "task", "accuracy_pct", "frame_ratio_pct", "text_ratio_pct", "queries")
	for _, name := range order {
		for _, tk := range tasks {
			r := ev.EvaluateTask(tk, factories[name])
			t.AddRow(name, tk.String(), 100*r.Accuracy, 100*r.FrameRatio, 100*r.TextRatio, r.Queries)
		}
	}
	t.Render(os.Stdout)
}
