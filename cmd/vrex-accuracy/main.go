// Command vrex-accuracy runs the Table II accuracy/ratio evaluation on the
// functional plane: the planted-saliency QA proxy over COIN-like sessions,
// for any subset of the retrieval policies.
//
// Policies come from the retrieval registry and accept spec-string
// parameters, so baselines can be re-budgeted from the command line:
//
//	vrex-accuracy -sessions 10
//	vrex-accuracy -policy resv -task Next -sessions 20
//	vrex-accuracy -policy 'rekv(frame=0.58,text=0.31)'
//	vrex-accuracy -list-policies
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vrex/internal/accuracy"
	"vrex/internal/model"
	"vrex/internal/report"
	"vrex/internal/retrieval"
	"vrex/internal/workload"
)

func main() {
	sessions := flag.Int("sessions", 10, "sessions per task family")
	policy := flag.String("policy", "all", "'all' or a policy spec (see -list-policies)")
	task := flag.String("task", "all", "all | Step | Next | Proc. | Proc.+ | Task")
	seed := flag.Uint64("seed", 7, "random seed")
	list := flag.Bool("list-policies", false, "list registered policy names and exit")
	flag.Parse()

	if *list {
		for _, n := range retrieval.Names() {
			fmt.Println(n)
		}
		return
	}

	mcfg := model.DefaultConfig()
	mcfg.Seed = *seed
	wcfg := workload.DefaultConfig()
	wcfg.Seed = *seed
	ev := accuracy.NewEvaluator(mcfg, wcfg, *sessions)

	specs := []string{"dense", "infinigen", "infinigenp", "rekv", "resv"}
	if *policy != "all" {
		specs = []string{*policy}
	}
	// Resolve every spec up front so a typo fails before any evaluation runs.
	factories := make([]accuracy.PolicyFactory, len(specs))
	for i, spec := range specs {
		spec := spec
		if _, err := retrieval.FromSpec(spec, mcfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		factories[i] = func() model.Retriever {
			p, err := retrieval.FromSpec(spec, mcfg)
			if err != nil {
				panic(err) // validated above
			}
			return p
		}
	}

	tasks := workload.Tasks()
	if *task != "all" {
		var sel []workload.Task
		for _, tk := range tasks {
			if strings.EqualFold(tk.String(), *task) {
				sel = append(sel, tk)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "unknown task %q (known: all, Step, Next, Proc., Proc.+, Task)\n", *task)
			os.Exit(1)
		}
		tasks = sel
	}

	t := report.NewTable("Accuracy and retrieval ratios (planted-saliency proxy)",
		"policy", "task", "accuracy_pct", "frame_ratio_pct", "text_ratio_pct", "queries")
	for i, spec := range specs {
		for _, tk := range tasks {
			r := ev.EvaluateTask(tk, factories[i])
			t.AddRow(spec, tk.String(), 100*r.Accuracy, 100*r.FrameRatio, 100*r.TextRatio, r.Queries)
		}
	}
	t.Render(os.Stdout)
}
