// Command vrex-benchstat converts `go test -bench` output into the
// repository's machine-readable benchmark JSON and diffs two such captures.
// It backs the perf trajectory workflow:
//
//	make bench-perf                  # capture BENCH_PRn.json on this tree
//	make bench-compare OLD=a NEW=b   # before/after table (markdown)
//
// Parse mode reads benchmark text on stdin and emits one JSON document:
//
//	vrex-benchstat -parse < bench.txt > BENCH_PR3.json
//
// Compare mode reads two JSON captures and prints a markdown table of
// ns/op, B/op and allocs/op deltas for benchmarks present in both:
//
//	vrex-benchstat -compare OLD.json NEW.json
//	vrex-benchstat -compare -tolerance 500 OLD.json NEW.json
//
// With -tolerance, compare exits nonzero when any benchmark present in both
// captures regressed its ns/op or allocs/op by more than the given percent
// (and whenever a zero-alloc baseline gains any allocation) — the CI gate
// against the committed BENCH_PR*.json baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one captured benchmark result.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Capture is the JSON document: environment header plus results.
type Capture struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	parse := flag.Bool("parse", false, "parse `go test -bench` text on stdin into JSON on stdout")
	compare := flag.Bool("compare", false, "compare two benchmark JSON files (old new)")
	tolerance := flag.Float64("tolerance", 0,
		"with -compare: exit nonzero when any ns/op or allocs/op regression exceeds this percent (0 disables gating)")
	flag.Parse()

	switch {
	case *parse:
		if err := runParse(); err != nil {
			fatal(err)
		}
	case *compare:
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two files, got %d", flag.NArg()))
		}
		if *tolerance < 0 {
			fatal(fmt.Errorf("-tolerance must be non-negative, got %v", *tolerance))
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *tolerance); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vrex-benchstat:", err)
	os.Exit(1)
}

// runParse converts benchmark text lines into a Capture.
func runParse() error {
	c := Capture{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			c.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			c.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			c.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				c.Benchmarks = append(c.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	sort.Slice(c.Benchmarks, func(i, j int) bool {
		return c.Benchmarks[i].Name < c.Benchmarks[j].Name
	})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// parseLine decodes one `BenchmarkName  N  x ns/op [y B/op  z allocs/op]`
// line; the trailing -8 style GOMAXPROCS suffix is stripped from the name.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, false
	}
	return b, true
}

func load(path string) (map[string]Benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Capture
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Benchmark, len(c.Benchmarks))
	for _, b := range c.Benchmarks {
		out[b.Name] = b
	}
	return out, nil
}

// nsGateFloor is the minimum baseline ns/op for time gating: below ~1 ms a
// single-iteration CI capture measures timer granularity and warmup, not the
// benchmark (a 1.6 ns kernel cannot be timed in one call), so short
// benchmarks are gated on allocs/op only.
const nsGateFloor = 1e6

// regressions lists benchmarks present in both captures whose ns/op (for
// baselines above nsGateFloor) or allocs/op regressed by more than tol
// percent; a zero-alloc baseline that gains any allocation is always flagged
// (percentages of zero are meaningless, and zero-alloc hot paths are a hard
// invariant of PR 3).
func regressions(oldB, newB map[string]Benchmark, tol float64) []string {
	var names []string
	for name := range oldB {
		if _, ok := newB[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []string
	for _, name := range names {
		o, n := oldB[name], newB[name]
		if o.NsPerOp >= nsGateFloor {
			if pct := 100 * (n.NsPerOp - o.NsPerOp) / o.NsPerOp; pct > tol {
				out = append(out, fmt.Sprintf("%s: ns/op %s -> %s (%+.1f%% > %.0f%%)",
					name, fmtNs(o.NsPerOp), fmtNs(n.NsPerOp), pct, tol))
			}
		}
		switch {
		case o.AllocsPerOp == 0 && n.AllocsPerOp > 0:
			out = append(out, fmt.Sprintf("%s: allocs/op 0 -> %.0f (zero-alloc baseline)", name, n.AllocsPerOp))
		case o.AllocsPerOp > 0:
			if pct := 100 * (n.AllocsPerOp - o.AllocsPerOp) / o.AllocsPerOp; pct > tol {
				out = append(out, fmt.Sprintf("%s: allocs/op %.0f -> %.0f (%+.1f%% > %.0f%%)",
					name, o.AllocsPerOp, n.AllocsPerOp, pct, tol))
			}
		}
	}
	return out
}

// runCompare prints a markdown before/after table for benchmarks present in
// both captures, plus lines for added/removed ones. tol > 0 turns on the
// regression gate (see regressions).
func runCompare(oldPath, newPath string, tol float64) error {
	oldB, err := load(oldPath)
	if err != nil {
		return err
	}
	newB, err := load(newPath)
	if err != nil {
		return err
	}
	var names []string
	for name := range oldB {
		if _, ok := newB[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Printf("| benchmark | old ns/op | new ns/op | Δ time | old allocs/op | new allocs/op |\n")
	fmt.Printf("|---|---:|---:|---:|---:|---:|\n")
	for _, name := range names {
		o, n := oldB[name], newB[name]
		delta := "n/a"
		if o.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(n.NsPerOp-o.NsPerOp)/o.NsPerOp)
		}
		fmt.Printf("| %s | %s | %s | %s | %.0f | %.0f |\n",
			name, fmtNs(o.NsPerOp), fmtNs(n.NsPerOp), delta, o.AllocsPerOp, n.AllocsPerOp)
	}
	var added []string
	for name := range newB {
		if _, ok := oldB[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Printf("| %s | — | %s | new | — | %.0f |\n",
			name, fmtNs(newB[name].NsPerOp), newB[name].AllocsPerOp)
	}
	if tol > 0 {
		if regs := regressions(oldB, newB, tol); len(regs) > 0 {
			return fmt.Errorf("%d regression(s) beyond %.0f%% tolerance:\n  %s",
				len(regs), tol, strings.Join(regs, "\n  "))
		}
	}
	return nil
}

// fmtNs renders nanoseconds human-first (ns, µs, ms).
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2f ms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2f µs", ns/1e3)
	default:
		return fmt.Sprintf("%.1f ns", ns)
	}
}
