package main

import (
	"strings"
	"testing"
)

func bmap(bs ...Benchmark) map[string]Benchmark {
	m := make(map[string]Benchmark, len(bs))
	for _, b := range bs {
		m[b.Name] = b
	}
	return m
}

func TestRegressionsGate(t *testing.T) {
	oldB := bmap(
		Benchmark{Name: "BenchmarkFast", NsPerOp: 100e6, AllocsPerOp: 10},
		Benchmark{Name: "BenchmarkZeroAlloc", NsPerOp: 50, AllocsPerOp: 0},
		Benchmark{Name: "BenchmarkRemoved", NsPerOp: 10},
	)
	// Within tolerance: +40% time, same allocs, zero-alloc stays zero.
	ok := bmap(
		Benchmark{Name: "BenchmarkFast", NsPerOp: 140e6, AllocsPerOp: 10},
		Benchmark{Name: "BenchmarkZeroAlloc", NsPerOp: 70, AllocsPerOp: 0},
		Benchmark{Name: "BenchmarkAdded", NsPerOp: 5, AllocsPerOp: 99},
	)
	if regs := regressions(oldB, ok, 50); len(regs) != 0 {
		t.Fatalf("within-tolerance capture flagged: %v", regs)
	}
	// ns/op blown past tolerance.
	slow := bmap(Benchmark{Name: "BenchmarkFast", NsPerOp: 200e6, AllocsPerOp: 10})
	regs := regressions(oldB, slow, 50)
	if len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
		t.Fatalf("time regression not flagged: %v", regs)
	}
	// Alloc growth past tolerance.
	alloc := bmap(Benchmark{Name: "BenchmarkFast", NsPerOp: 100e6, AllocsPerOp: 16})
	regs = regressions(oldB, alloc, 50)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("alloc regression not flagged: %v", regs)
	}
	// A zero-alloc baseline gaining any allocation is flagged at any
	// tolerance.
	broken := bmap(Benchmark{Name: "BenchmarkZeroAlloc", NsPerOp: 50, AllocsPerOp: 1})
	regs = regressions(oldB, broken, 1000)
	if len(regs) != 1 || !strings.Contains(regs[0], "zero-alloc") {
		t.Fatalf("zero-alloc break not flagged: %v", regs)
	}
	// Sub-floor baselines are exempt from time gating: one iteration cannot
	// time a nanosecond kernel (allocs above are still gated).
	jitter := bmap(Benchmark{Name: "BenchmarkZeroAlloc", NsPerOp: 5000, AllocsPerOp: 0})
	if regs := regressions(oldB, jitter, 50); len(regs) != 0 {
		t.Fatalf("sub-floor timing flagged: %v", regs)
	}
	// Improvements never trip the gate.
	better := bmap(Benchmark{Name: "BenchmarkFast", NsPerOp: 10e6, AllocsPerOp: 1})
	if regs := regressions(oldB, better, 1); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkHWSimFrame-8   \t 1000\t 1234.5 ns/op\t 64 B/op\t 3 allocs/op")
	if !ok || b.Name != "BenchmarkHWSimFrame" || b.Iterations != 1000 ||
		b.NsPerOp != 1234.5 || b.BytesPerOp != 64 || b.AllocsPerOp != 3 {
		t.Fatalf("parsed %+v, ok=%v", b, ok)
	}
	if _, ok := parseLine("BenchmarkBroken not-a-count"); ok {
		t.Fatal("malformed line must be rejected")
	}
}
