// Command vrex-vet runs the vrex static-analysis suite (internal/analysis)
// over the module: the determinism, noalloc, policyreg, exhaustive and
// floatdet analyzers that enforce the simulator's invariants at review time.
//
//	vrex-vet ./...                 # whole module (the make vet / CI entry)
//	vrex-vet -run determinism ./internal/serve
//	vrex-vet -list
//
// Diagnostics print as file:line:col: message (analyzer), one per line, and
// any diagnostic makes the exit status 1 — wire it next to `go vet`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vrex/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vrex-vet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vrex-vet:", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(wd)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vrex-vet:", err)
		os.Exit(2)
	}

	bad := false
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vrex-vet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			bad = true
			fmt.Printf("%s: %s (%s)\n", loader.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	if bad {
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -run filter against the suite.
func selectAnalyzers(filter string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if filter == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(filter, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			names := make([]string, 0, len(all))
			for _, a := range all {
				names = append(names, a.Name)
			}
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
