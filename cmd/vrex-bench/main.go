// Command vrex-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	vrex-bench -exp fig13          # one experiment
//	vrex-bench -exp all            # everything
//	vrex-bench -exp tab2 -sessions 20 -seed 3
//	vrex-bench -list               # show experiment IDs
//
// Each experiment prints the rows/series of the corresponding paper artifact
// (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// paper-vs-measured values).
package main

import (
	"flag"
	"fmt"
	"os"

	"vrex/internal/experiments"
	"vrex/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID (fig4a..fig20, tab1..tab3) or 'all'")
	sessions := flag.Int("sessions", 10, "sessions per task for accuracy experiments")
	seed := flag.Uint64("seed", 7, "random seed")
	quick := flag.Bool("quick", false, "shrink functional workloads (smoke mode)")
	format := flag.String("format", "text", "output format: text | csv | md")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	opts := experiments.Options{Sessions: *sessions, Seed: *seed, Quick: *quick}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		if err := experiments.RunAs(id, opts, os.Stdout, report.Format(*format)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
