// Command vrex-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	vrex-bench -exp fig13          # one experiment
//	vrex-bench -exp all            # everything, dispatched across workers
//	vrex-bench -exp all -parallel 1  # fully sequential (identical output)
//	vrex-bench -exp tab2 -sessions 20 -seed 3
//	vrex-bench -exp fleet -format json   # machine-readable artifact
//	vrex-bench -list               # show experiment IDs
//
// Each experiment prints the rows/series of the corresponding paper artifact
// (see EXPERIMENTS.md for the experiment index and regeneration commands).
// Output is byte-identical for every -parallel value: experiments render
// into private buffers that are emitted in stable order, and all
// kernel-level sharding is deterministic. -format json emits one JSON
// object per table (newline-delimited), the shape CI uploads as its
// bench-smoke artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"vrex/internal/experiments"
	"vrex/internal/report"
	"vrex/internal/tensor"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID (fig4a..fig20, tab1..tab3) or 'all'")
	sessions := flag.Int("sessions", 10, "sessions per task for accuracy experiments")
	seed := flag.Uint64("seed", 7, "random seed")
	quick := flag.Bool("quick", false, "shrink functional workloads (smoke mode)")
	format := flag.String("format", "text", "output format: text | csv | md | json")
	par := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count (1 = sequential)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	f, err := report.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tensor.SetWorkers(*par) // matmul kernels sit below Options threading
	opts := experiments.Options{Sessions: *sessions, Seed: *seed, Quick: *quick, Parallel: *par}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	if err := experiments.RunMany(ids, opts, os.Stdout, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
