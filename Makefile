# Mirrors .github/workflows/ci.yml so local runs and CI are the same
# commands: `make ci` is exactly what a PR must pass.

GO ?= go

# Perf-capture knobs: `make bench-perf` writes $(BENCH_OUT); `make
# bench-compare OLD=a.json NEW=b.json` prints the before/after table, and
# with TOL=<percent> exits nonzero on any ns/op or allocs/op regression
# beyond the tolerance (the CI gate). (BENCH_PR*.json files are committed
# frozen baselines — capture to a scratch name and compare against them,
# don't overwrite them.)
BENCH_OUT ?= bench-perf.json
OLD ?= BENCH_PR5.json
NEW ?= bench-perf.json
TOL ?=

.PHONY: build test test-race bench bench-smoke bench-json bench-perf bench-compare cover examples fmt fmt-check vet ci

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

test-race:
	$(GO) test -race ./...

# Full benchmark sweep (slow; regenerates every paper artifact repeatedly).
bench:
	$(GO) test -run xxx -bench=. ./...

# CI's perf smoke: one iteration per benchmark, Quick workloads only,
# with allocation counters so per-frame allocation regressions are visible.
bench-smoke:
	$(GO) test -run xxx -bench=. -benchtime=1x -benchmem -short ./...

# Machine-readable bench artifact (Quick workloads): one JSON object per
# table, uploaded by the bench-smoke CI job.
bench-json:
	$(GO) run ./cmd/vrex-bench -exp all -quick -format json > bench-smoke.json

# Machine-readable perf capture: kernel + experiment benchmark timings and
# allocation counts as JSON (the BENCH_*.json trajectory files; see
# EXPERIMENTS.md "Performance workflow"). Uploaded as a CI artifact.
bench-perf:
	$(GO) test -run xxx -bench=. -benchtime=1x -benchmem -short ./... \
		| $(GO) run ./cmd/vrex-benchstat -parse > $(BENCH_OUT)

# Diff two bench-perf captures: markdown table of ns/op and allocs/op
# deltas; TOL=<percent> additionally gates on regressions beyond it.
bench-compare:
	$(GO) run ./cmd/vrex-benchstat -compare $(if $(TOL),-tolerance $(TOL)) $(OLD) $(NEW)

# Coverage profile across all packages; CI uploads cover.out as an artifact.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -n 1

# Build and run every example binary as a smoke test.
examples:
	$(GO) build ./examples/...
	@for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d > /dev/null || exit 1; \
	done

fmt:
	gofmt -w .

fmt-check:
	@diff=$$(gofmt -l .); \
	if [ -n "$$diff" ]; then \
		echo "gofmt needed on:" >&2; echo "$$diff" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Same steps as the workflow: build, vet, gofmt, race tests, examples,
# bench smoke + JSON artifact.
ci: build vet fmt-check test-race examples bench-smoke bench-json
