# Mirrors .github/workflows/ci.yml so local runs and CI are the same
# commands: `make ci` is exactly what a PR must pass.

GO ?= go

# Perf-capture knobs: `make bench-perf` writes $(BENCH_OUT); `make
# bench-compare OLD=a.json NEW=b.json` prints the before/after table, and
# with TOL=<percent> exits nonzero on any ns/op or allocs/op regression
# beyond the tolerance (the CI gate). (BENCH_PR*.json files are committed
# frozen baselines — capture to a scratch name and compare against them,
# don't overwrite them.)
BENCH_OUT ?= bench-perf.json
OLD ?= BENCH_PR9.json
NEW ?= bench-perf.json
TOL ?=

# Coverage gate: `make cover` fails when total statement coverage drops
# below COVER_FLOOR percent. The repo sits well above 80%; the floor is
# deliberately conservative so it trips on wholesale untested subsystems,
# not on a single sparse PR.
COVER_FLOOR ?= 60

# Fuzz smoke budget for `make fuzz-smoke` (native Go fuzzing).
FUZZTIME ?= 20s

.PHONY: build test test-race bench bench-smoke bench-json bench-perf bench-compare cover examples fmt fmt-check vet scenario-lint scenarios fuzz-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

test-race:
	$(GO) test -race ./...

# Full benchmark sweep (slow; regenerates every paper artifact repeatedly).
bench:
	$(GO) test -run xxx -bench=. ./...

# CI's perf smoke: one iteration per benchmark, Quick workloads only,
# with allocation counters so per-frame allocation regressions are visible.
bench-smoke:
	$(GO) test -run xxx -bench=. -benchtime=1x -benchmem -short ./...

# Machine-readable bench artifact (Quick workloads): one JSON object per
# table, uploaded by the bench-smoke CI job.
bench-json:
	$(GO) run ./cmd/vrex-bench -exp all -quick -format json > bench-smoke.json

# Machine-readable perf capture: kernel + experiment benchmark timings and
# allocation counts as JSON (the BENCH_*.json trajectory files; see
# EXPERIMENTS.md "Performance workflow"). Uploaded as a CI artifact.
bench-perf:
	$(GO) test -run xxx -bench=. -benchtime=1x -benchmem -short ./... \
		| $(GO) run ./cmd/vrex-benchstat -parse > $(BENCH_OUT)

# Diff two bench-perf captures: markdown table of ns/op and allocs/op
# deltas; TOL=<percent> additionally gates on regressions beyond it.
bench-compare:
	$(GO) run ./cmd/vrex-benchstat -compare $(if $(TOL),-tolerance $(TOL)) $(OLD) $(NEW)

# Parse, compile and canonical-round-trip every committed scenario file.
scenario-lint:
	$(GO) run ./cmd/vrex-sim -scenario-lint scenarios

# Run the committed .vrex suite (plus the adversarial search) in Quick
# mode and diff against its pinned golden — the CI gate for scenarios/.
# (.PHONY keeps the scenarios/ directory from satisfying this target.)
scenarios:
	$(GO) run ./cmd/vrex-bench -exp scenarios -quick -parallel 1 | \
		diff -u internal/experiments/testdata/golden/quick/scenarios.txt -

# Native-fuzz smoke over the scenario parser: replays the committed seed
# corpus, then fuzzes for FUZZTIME looking for parse/marshal fixed-point
# violations.
fuzz-smoke:
	$(GO) test -run xxx -fuzz=FuzzParseScenario -fuzztime=$(FUZZTIME) ./internal/scenario/

# Coverage profile across all packages (per-package lines from go test,
# totals from cover -func); CI uploads cover.out as an artifact and the
# COVER_FLOOR gate fails the job if total coverage regresses below it.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -n 1
	@$(GO) tool cover -func=cover.out | tail -n 1 | \
		awk -v floor=$(COVER_FLOOR) '{ sub(/%/, "", $$3); \
			if ($$3 + 0 < floor + 0) { \
				printf "FAIL: total coverage %s%% below floor %s%%\n", $$3, floor; exit 1 } \
			printf "coverage gate ok: %s%% >= %s%%\n", $$3, floor }'

# Build and run every example binary as a smoke test.
examples:
	$(GO) build ./examples/...
	@for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d > /dev/null || exit 1; \
	done

fmt:
	gofmt -w .

fmt-check:
	@diff=$$(gofmt -l .); \
	if [ -n "$$diff" ]; then \
		echo "gofmt needed on:" >&2; echo "$$diff" >&2; exit 1; \
	fi

# go vet plus the repo's own invariant analyzers (cmd/vrex-vet): determinism,
# noalloc, policyreg, exhaustive, floatdet. See README "Invariants".
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/vrex-vet ./...

# Same steps as the workflow: build, vet, gofmt, race tests, examples,
# scenario lint + suite golden, bench smoke + JSON artifact.
ci: build vet fmt-check test-race examples scenario-lint scenarios bench-smoke bench-json
