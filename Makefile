# Mirrors .github/workflows/ci.yml so local runs and CI are the same
# commands: `make ci` is exactly what a PR must pass.

GO ?= go

.PHONY: build test test-race bench bench-smoke bench-json examples fmt fmt-check vet ci

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

test-race:
	$(GO) test -race ./...

# Full benchmark sweep (slow; regenerates every paper artifact repeatedly).
bench:
	$(GO) test -run xxx -bench=. ./...

# CI's perf smoke: one iteration per benchmark, Quick workloads only.
bench-smoke:
	$(GO) test -run xxx -bench=. -benchtime=1x -short ./...

# Machine-readable bench artifact (Quick workloads): one JSON object per
# table, uploaded by the bench-smoke CI job.
bench-json:
	$(GO) run ./cmd/vrex-bench -exp all -quick -format json > bench-smoke.json

# Build and run every example binary as a smoke test.
examples:
	$(GO) build ./examples/...
	@for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d > /dev/null || exit 1; \
	done

fmt:
	gofmt -w .

fmt-check:
	@diff=$$(gofmt -l .); \
	if [ -n "$$diff" ]; then \
		echo "gofmt needed on:" >&2; echo "$$diff" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Same steps as the workflow: build, vet, gofmt, race tests, examples,
# bench smoke + JSON artifact.
ci: build vet fmt-check test-race examples bench-smoke bench-json
