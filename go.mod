module vrex

go 1.24
